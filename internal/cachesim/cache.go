// Package cachesim simulates an ideal cache in the Cache-Oblivious model
// (§2.1): a single fully-associative cache of M words organized in blocks
// of B words with LRU replacement (within a constant factor of the
// optimal replacement the model assumes). The paper measured last-level
// cache misses with hardware counters (PAPI); this simulator is the
// substitution — it reproduces the asymptotic miss behaviour those
// counters sampled, so the miss-count comparisons of Figures 4, 8 and 9
// are preserved in shape.
//
// Algorithm kernels (kernels.go) replay the memory access patterns of the
// compared implementations against the simulated cache and count an
// instruction proxy, yielding the paper's IPM (instructions per miss)
// metric.
package cachesim

import "container/list"

// Cache is a fully-associative LRU cache over an abstract word-addressed
// memory. The zero value is not usable; call New.
type Cache struct {
	B int // words per block
	M int // capacity in words

	capBlocks int
	table     map[uint64]*list.Element
	lru       *list.List // front = most recently used; values are block ids

	accesses uint64
	misses   uint64
	ops      uint64

	nextAddr uint64
}

// New returns a cache with capacity mWords organized into bWords blocks.
// The tall-cache assumption (M ≥ B²) is the caller's responsibility when
// matching theory.
func New(mWords, bWords int) *Cache {
	if bWords < 1 || mWords < bWords {
		panic("cachesim: need mWords >= bWords >= 1")
	}
	return &Cache{
		B:         bWords,
		M:         mWords,
		capBlocks: mWords / bWords,
		table:     make(map[uint64]*list.Element),
		lru:       list.New(),
	}
}

// Alloc reserves n consecutive words of simulated memory and returns the
// base address. Regions are block-aligned so distinct arrays never share
// blocks.
func (c *Cache) Alloc(n int) uint64 {
	base := c.nextAddr
	words := uint64(n)
	// Round up to a block boundary.
	blocks := (words + uint64(c.B) - 1) / uint64(c.B)
	c.nextAddr += blocks * uint64(c.B)
	return base
}

func (c *Cache) touchBlock(blk uint64) {
	if el, ok := c.table[blk]; ok {
		c.lru.MoveToFront(el)
		return
	}
	c.misses++
	el := c.lru.PushFront(blk)
	c.table[blk] = el
	if c.lru.Len() > c.capBlocks {
		victim := c.lru.Back()
		delete(c.table, victim.Value.(uint64))
		c.lru.Remove(victim)
	}
}

// Access simulates one word access at addr.
func (c *Cache) Access(addr uint64) {
	c.accesses++
	c.touchBlock(addr / uint64(c.B))
}

// AccessRange simulates n consecutive word accesses starting at addr
// (a sequential scan), touching ⌈n/B⌉+1 blocks at most.
func (c *Cache) AccessRange(addr, n uint64) {
	if n == 0 {
		return
	}
	c.accesses += n
	first := addr / uint64(c.B)
	last := (addr + n - 1) / uint64(c.B)
	for b := first; b <= last; b++ {
		c.touchBlock(b)
	}
}

// Ops adds k to the instruction proxy counter.
func (c *Cache) Ops(k uint64) { c.ops += k }

// Misses returns the number of block misses so far.
func (c *Cache) Misses() uint64 { return c.misses }

// Accesses returns the number of word accesses so far.
func (c *Cache) Accesses() uint64 { return c.accesses }

// Instructions returns the instruction proxy count.
func (c *Cache) Instructions() uint64 { return c.ops }

// IPM returns instructions per miss (0 when no misses occurred).
func (c *Cache) IPM() float64 {
	if c.misses == 0 {
		return 0
	}
	return float64(c.ops) / float64(c.misses)
}

// Flush empties the cache (the artifact's pointer-chase between trials)
// without resetting the counters.
func (c *Cache) Flush() {
	c.table = make(map[uint64]*list.Element)
	c.lru = list.New()
}

// ResetCounters zeroes the miss, access, and instruction counters.
func (c *Cache) ResetCounters() {
	c.accesses = 0
	c.misses = 0
	c.ops = 0
}
