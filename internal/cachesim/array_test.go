package cachesim

import "testing"

func TestArrayGetSetCharged(t *testing.T) {
	c := New(64, 8)
	a := NewArray[int](c, 16, 1)
	a.Set(3, 42)
	if got := a.Get(3); got != 42 {
		t.Fatalf("Get = %d", got)
	}
	if c.Accesses() != 2 || c.Instructions() != 2 {
		t.Errorf("accesses=%d ops=%d, want 2/2", c.Accesses(), c.Instructions())
	}
	// Same block: one miss.
	if c.Misses() != 1 {
		t.Errorf("misses = %d", c.Misses())
	}
}

func TestArrayWideElements(t *testing.T) {
	c := New(1024, 8)
	a := NewArray[[3]uint64](c, 10, 3)
	// Elements 0 and 2 are 6 words apart -> element 3 starts at word 9,
	// a different block from element 0.
	a.Set(0, [3]uint64{1, 2, 3})
	a.Set(3, [3]uint64{4, 5, 6})
	if c.Misses() != 2 {
		t.Errorf("wide elements should straddle blocks: %d misses", c.Misses())
	}
}

func TestArrayScan(t *testing.T) {
	c := New(1024, 8)
	a := NewArray[int](c, 64, 1)
	seg := a.Scan(0, 64)
	if len(seg) != 64 {
		t.Fatalf("segment len %d", len(seg))
	}
	if c.Misses() != 8 { // 64 words / 8-word blocks
		t.Errorf("scan misses = %d, want 8", c.Misses())
	}
	// Empty scan charges nothing.
	before := c.Accesses()
	a.Scan(5, 5)
	if c.Accesses() != before {
		t.Error("empty scan charged accesses")
	}
}

func TestArrayLen(t *testing.T) {
	c := New(64, 8)
	if NewArray[byte](c, 7, 0).Len() != 7 {
		t.Error("Len wrong (and wordsPerElem floor)")
	}
}
