package cachesim

import (
	"testing"

	"repro/internal/gen"
)

func TestLabelPropagationCCCount(t *testing.T) {
	g := gen.ErdosRenyiM(300, 500, 2, gen.Config{})
	_, want := g.ConnectedComponents()
	got := LabelPropagationCC(simCache(), g, 1)
	if got != want {
		t.Errorf("LP kernel count = %d, want %d", got, want)
	}
}

func TestLabelPropagationShareClamped(t *testing.T) {
	g := gen.Cycle(50, 1)
	if got := LabelPropagationCC(simCache(), g, 0); got != 1 {
		t.Errorf("share=0: count = %d", got)
	}
}

func TestLabelPropagationGhostOverheadCharged(t *testing.T) {
	// The PBGL model must pay for its ghost-cell accesses: with the label
	// array cache-resident but the ghost region not, LP misses should
	// greatly exceed a plain union-find pass.
	g := gen.RMAT(13, (1<<13)*16, 4, gen.Config{})
	small := New(1<<13, 8) // 8Ki words: labels fit, 4n ghost region doesn't
	LabelPropagationCC(small, g, 1)
	uf := New(1<<13, 8)
	UnionFindCC(uf, g)
	if small.Misses() <= uf.Misses() {
		t.Errorf("LP misses %d not above union-find misses %d", small.Misses(), uf.Misses())
	}
}
