package cachesim

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// The kernels below replay the memory access patterns of the compared
// implementations against the simulated cache while computing the real
// results (so tests can validate them). Word layout: vertex ids and
// labels are one word; an edge is three words.

// BFSCC replays the sequential traversal baseline (BGL's linear-time
// connected components): CSR adjacency scans plus one random label access
// per edge endpoint. Returns the component count.
func BFSCC(c *Cache, g *graph.Graph) int {
	csr := graph.BuildCSR(g)
	n := g.N
	offBase := c.Alloc(n + 1)
	adjBase := c.Alloc(len(csr.Adj))
	labBase := c.Alloc(n)
	stkBase := c.Alloc(n)

	labels := make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	count := 0
	for s := int32(0); int(s) < n; s++ {
		c.Access(labBase + uint64(s)) // probe
		c.Ops(2)
		if labels[s] >= 0 {
			continue
		}
		labels[s] = int32(count)
		stack = append(stack[:0], s)
		c.Access(stkBase)
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c.Access(stkBase + uint64(len(stack))%uint64(cap(stack)+1))
			c.AccessRange(offBase+uint64(v), 2) // offset[v], offset[v+1]
			lo, hi := csr.Offset[v], csr.Offset[v+1]
			c.AccessRange(adjBase+uint64(lo), uint64(hi-lo))
			c.Ops(uint64(hi-lo) + 4)
			for _, w := range csr.Adj[lo:hi] {
				c.Access(labBase + uint64(w)) // random label probe
				c.Ops(3)
				if labels[w] < 0 {
					labels[w] = int32(count)
					c.Access(labBase + uint64(w)) // write
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return count
}

// ufSim is a union-find whose parent-array accesses are charged to the
// cache.
type ufSim struct {
	c      *Cache
	base   uint64
	parent []int32
	rank   []int8
	count  int
}

func newUFSim(c *Cache, n int) *ufSim {
	u := &ufSim{c: c, base: c.Alloc(2 * n), parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *ufSim) find(x int32) int32 {
	root := x
	for {
		u.c.Access(u.base + uint64(root))
		u.c.Ops(2)
		if u.parent[root] == root {
			break
		}
		root = u.parent[root]
	}
	for u.parent[x] != root {
		u.c.Access(u.base + uint64(x))
		u.parent[x], x = root, u.parent[x]
	}
	return root
}

func (u *ufSim) union(a, b int32) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.c.Access(u.base + uint64(rb))
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	u.c.Ops(4)
	return true
}

// UnionFindCC replays the asynchronous shared-memory baseline's
// sequential access pattern (Galois-style): one union per edge over a
// randomly accessed parent array, scanning the edge array once.
func UnionFindCC(c *Cache, g *graph.Graph) int {
	edgeBase := c.Alloc(3 * len(g.Edges))
	uf := newUFSim(c, g.N)
	for i, e := range g.Edges {
		c.AccessRange(edgeBase+uint64(3*i), 3)
		c.Ops(3)
		uf.union(e.U, e.V)
	}
	return uf.count
}

// SamplingCC replays the paper's iterated-sampling connected components
// (§3.2) run sequentially: per round, s random probes into the edge
// array, union-find over the sample, then one sequential relabelling scan
// of the remaining edges. Returns the component count.
func SamplingCC(c *Cache, g *graph.Graph, st *rng.Stream, epsilon float64) int {
	n := g.N
	edges := append([]graph.Edge(nil), g.Edges...)
	edgeBase := c.Alloc(3 * len(edges))
	labBase := c.Alloc(n)

	comp := make([]int32, n)
	for i := range comp {
		comp[i] = int32(i)
	}
	s := int(math.Ceil(math.Pow(float64(n), 1+epsilon/2)))
	for len(edges) > 0 {
		uf := newUFSim(c, n)
		// Sample s edges (uniform with replacement; random probes).
		take := s
		if take > 2*len(edges) {
			take = len(edges)
			// Whole-slice regime: sequential scan instead of probes.
			c.AccessRange(edgeBase, uint64(3*len(edges)))
			c.Ops(uint64(len(edges)))
			for _, e := range edges {
				uf.union(e.U, e.V)
			}
		} else {
			for k := 0; k < take; k++ {
				i := st.Intn(len(edges))
				c.AccessRange(edgeBase+uint64(3*i), 3)
				c.Ops(4)
				uf.union(edges[i].U, edges[i].V)
			}
		}
		// Dense labelling + label-array update.
		labels := make([]int32, n)
		next := int32(0)
		seen := make(map[int32]int32, n)
		for v := int32(0); int(v) < n; v++ {
			r := uf.find(v)
			l, ok := seen[r]
			if !ok {
				l = next
				seen[r] = l
				next++
			}
			labels[v] = l
		}
		c.AccessRange(labBase, uint64(n))
		c.Ops(uint64(n))
		for v := range comp {
			comp[v] = labels[comp[v]]
		}
		// Relabel + compact the edge array sequentially.
		out := edges[:0]
		for i, e := range edges {
			c.AccessRange(edgeBase+uint64(3*i), 3)
			c.Ops(4)
			u, v := labels[e.U], labels[e.V]
			if u != v {
				out = append(out, graph.Edge{U: u, V: v, W: e.W})
			}
		}
		edges = out
	}
	distinct := map[int32]bool{}
	for _, l := range comp {
		distinct[l] = true
	}
	return len(distinct)
}

// matSim is an adjacency matrix whose row accesses are charged to the
// cache.
type matSim struct {
	c    *Cache
	base uint64
	n    int
	w    []uint64
}

func newMatSim(c *Cache, g *graph.Graph) *matSim {
	m := &matSim{c: c, base: c.Alloc(g.N * g.N), n: g.N, w: graph.MatrixFromGraph(g).W}
	return m
}

func (m *matSim) rowScan(i int32) []uint64 {
	m.c.AccessRange(m.base+uint64(int(i)*m.n), uint64(m.n))
	m.c.Ops(uint64(m.n))
	return m.w[int(i)*m.n : (int(i)+1)*m.n]
}

// StoerWagnerKernel replays the deterministic SW baseline: n-1 phases of
// maximum-adjacency search with dense row scans, plus the random column
// writes of each merge — the locality sin Figure 9 exposes. Returns the
// minimum cut value.
func StoerWagnerKernel(c *Cache, g *graph.Graph) uint64 {
	n := g.N
	m := newMatSim(c, g)
	connBase := c.Alloc(n)
	alive := make([]int32, n)
	for i := range alive {
		alive[i] = int32(i)
	}
	live := n
	best := uint64(math.MaxUint64)
	conn := make([]uint64, n)
	inA := make([]bool, n)
	for live > 1 {
		for _, v := range alive[:live] {
			conn[v] = 0
			inA[v] = false
		}
		c.AccessRange(connBase, uint64(live))
		var prev, last int32 = -1, alive[0]
		inA[last] = true
		row := m.rowScan(last)
		for _, v := range alive[:live] {
			if !inA[v] {
				conn[v] += row[v]
			}
		}
		c.AccessRange(connBase, uint64(live))
		c.Ops(uint64(live))
		for step := 1; step < live; step++ {
			var sel int32 = -1
			var selW uint64
			c.AccessRange(connBase, uint64(live)) // selection scan
			c.Ops(uint64(live))
			for _, v := range alive[:live] {
				if !inA[v] && (sel < 0 || conn[v] > selW) {
					sel = v
					selW = conn[v]
				}
			}
			prev, last = last, sel
			inA[sel] = true
			row = m.rowScan(sel)
			for _, v := range alive[:live] {
				if !inA[v] {
					conn[v] += row[v]
				}
			}
			c.AccessRange(connBase, uint64(live))
			c.Ops(uint64(live))
		}
		if conn[last] < best {
			best = conn[last]
		}
		// Merge last into prev: two row scans plus live random column
		// writes.
		rowPrev := m.rowScan(prev)
		rowLast := m.rowScan(last)
		for _, k := range alive[:live] {
			if k == prev || k == last {
				continue
			}
			nw := rowPrev[k] + rowLast[k]
			rowPrev[k] = nw
			m.w[int(k)*m.n+int(prev)] = nw
			m.w[int(k)*m.n+int(last)] = 0
			c.Access(m.base + uint64(int(k)*m.n+int(prev))) // random write
			c.Access(m.base + uint64(int(k)*m.n+int(last)))
			c.Ops(4)
		}
		rowPrev[last] = 0
		rowLast[prev] = 0
		for idx, a := range alive[:live] {
			if a == last {
				alive[idx] = alive[live-1]
				live--
				break
			}
		}
	}
	return best
}

// ksContract replays one random contraction to t vertices in the style
// of the cache-oblivious Karger–Stein variant: instead of per-edge row
// merges, a batch of edges is sampled (iterated sampling), prefix
// selection picks the usable prefix, and ONE dense bulk-contraction pass
// rewrites the matrix sequentially — O(n²/B) misses per round instead of
// O(n) scans per contraction. Returns the compacted matrix and its size.
func ksContract(c *Cache, base uint64, n int, w []uint64, t int, st *rng.Stream) (int, []uint64) {
	uf := graph.NewUnionFind(n)
	for uf.Count() > t {
		// Build cumulative weights with one sequential pass (entries are
		// in the current, compacted matrix).
		ps := rng.NewPrefixSampler(w)
		c.AccessRange(base, uint64(n*n))
		c.Ops(uint64(n * n))
		if ps.Total() == 0 {
			break
		}
		// Sample a batch of random probes. The budget is generous (several
		// n^(1+σ)) so that a single bulk-contraction pass per call is the
		// common case — probes are single-word accesses, far cheaper than
		// rescanning the matrix.
		s := 8 * int(math.Ceil(math.Pow(float64(uf.Count()), 1.5)))
		if s < 256 {
			s = 256
		}
		before := uf.Count()
		for k := 0; k < s && uf.Count() > t; k++ {
			idx := ps.Sample(st)
			c.Access(base + uint64(idx))
			c.Ops(8)
			uf.Union(int32(idx/n), int32(idx%n))
		}
		if uf.Count() == before {
			break
		}
		// Bulk contraction: one sequential read of the n×n matrix, one
		// sequential write of the contracted one.
		labels := uf.Labels()
		live := uf.Count()
		out := make([]uint64, live*live)
		for i := 0; i < n; i++ {
			ti := int(labels[i])
			row := w[i*n : (i+1)*n]
			for j, x := range row {
				if x != 0 {
					out[ti*live+int(labels[j])] += x
				}
			}
		}
		for v := 0; v < live; v++ {
			out[v*live+v] = 0
		}
		c.AccessRange(base, uint64(n*n))
		c.AccessRange(base, uint64(live*live))
		c.Ops(uint64(n*n) + uint64(live*live))
		// Continue on the contracted matrix (relabelled union-find).
		w = out
		n = live
		uf = graph.NewUnionFind(n)
	}
	return n, w
}

// ksArena provides per-recursion-depth scratch addresses, mirroring a
// real implementation's buffer reuse: sibling subproblems at the same
// depth overwrite the same memory, so cache-resident subproblems actually
// hit the cache instead of cold-missing on fresh allocations.
type ksArena struct {
	c     *Cache
	bases map[int]uint64
}

func (a *ksArena) base(depth, words int) uint64 {
	b, ok := a.bases[depth]
	if !ok {
		b = a.c.Alloc(words)
		a.bases[depth] = b
	}
	return b
}

// ksRecurseKernel replays recursive contraction on the compacted matrix.
func ksRecurseKernel(c *Cache, a *ksArena, depth int, w []uint64, n int, st *rng.Stream) uint64 {
	if n <= 6 {
		best := uint64(math.MaxUint64)
		for mask := uint32(1); mask < uint32(1)<<(n-1); mask++ {
			var val uint64
			for i := 0; i < n; i++ {
				si := i > 0 && mask>>uint(i-1)&1 == 1
				for j := i + 1; j < n; j++ {
					if si != (mask>>uint(j-1)&1 == 1) {
						val += w[i*n+j]
					}
				}
			}
			if val < best {
				best = val
			}
		}
		c.AccessRange(a.base(depth, n*n), uint64(n*n))
		c.Ops((uint64(1) << uint(n-1)) * uint64(n*n) / 2)
		return best
	}
	t := int(math.Ceil(float64(n)/math.Sqrt2)) + 1
	if t >= n {
		t = n - 1
	}
	best := uint64(math.MaxUint64)
	for branch := 0; branch < 2; branch++ {
		wc := append([]uint64(nil), w...)
		base := a.base(depth, n*n)
		c.AccessRange(base, uint64(n*n)) // copy
		c.Ops(uint64(n * n))
		live, cw := ksContract(c, base, n, wc, t, st)
		if v := ksRecurseKernel(c, a, depth+1, cw, live, st); v < best {
			best = v
		}
	}
	return best
}

// KargerSteinKernel replays `trials` runs of recursive contraction — the
// paper's cache-oblivious KS baseline — and returns the best cut value.
func KargerSteinKernel(c *Cache, g *graph.Graph, st *rng.Stream, trials int) uint64 {
	m := graph.MatrixFromGraph(g)
	best := uint64(math.MaxUint64)
	arena := &ksArena{c: c, bases: map[int]uint64{}}
	for i := 0; i < trials; i++ {
		if v := ksRecurseKernel(c, arena, 0, m.W, g.N, st); v < best {
			best = v
		}
	}
	// Min-degree fallback (scan).
	deg := g.Degrees()
	for _, d := range deg {
		if d < best {
			best = d
		}
	}
	c.Ops(uint64(g.N))
	return best
}

// MCKernel replays the paper's full MC algorithm run on one processor:
// per trial, the Eager Step over the edge array (sequential scans plus
// random sampling probes) followed by recursive contraction on the
// ⌈√m⌉+1-vertex remainder. Buffered edge arrays and intermediate
// structures make it less compact than the KS baseline, which is the gap
// Figure 9 shows. Returns the best cut value.
func MCKernel(c *Cache, g *graph.Graph, st *rng.Stream, trials int) uint64 {
	best := uint64(math.MaxUint64)
	tgt := int(math.Ceil(math.Sqrt(float64(len(g.Edges))))) + 1
	for trial := 0; trial < trials; trial++ {
		// Eager step on the edge array.
		edges := append([]graph.Edge(nil), g.Edges...)
		base := c.Alloc(3 * len(edges))
		c.AccessRange(base, uint64(3*len(edges))) // copy in
		n := g.N
		comp := make([]int32, n)
		for i := range comp {
			comp[i] = int32(i)
		}
		nCur := n
		for nCur > tgt && len(edges) > 0 {
			s := int(math.Ceil(math.Pow(float64(nCur), 1.5)))
			if s > 2*len(edges) {
				s = 2 * len(edges)
			}
			if s < 64 {
				s = 64
			}
			// Weight prefix for sampling: sequential scan.
			weights := make([]uint64, len(edges))
			for i, e := range edges {
				weights[i] = e.W
			}
			c.AccessRange(base, uint64(3*len(edges)))
			c.Ops(uint64(len(edges)))
			ps := rng.NewPrefixSampler(weights)
			uf := newUFSim(c, nCur)
			for k := 0; k < s; k++ {
				if uf.count <= tgt {
					break
				}
				i := ps.Sample(st)
				c.AccessRange(base+uint64(3*i), 3)
				c.Ops(6)
				uf.union(edges[i].U, edges[i].V)
			}
			labels := make([]int32, nCur)
			seen := make(map[int32]int32, nCur)
			for v := int32(0); int(v) < nCur; v++ {
				r := uf.find(v)
				l, ok := seen[r]
				if !ok {
					l = int32(len(seen))
					seen[r] = l
				}
				labels[v] = l
			}
			out := edges[:0]
			for i, e := range edges {
				c.AccessRange(base+uint64(3*i), 3)
				c.Ops(5)
				u, v := labels[e.U], labels[e.V]
				if u != v {
					out = append(out, graph.Edge{U: u, V: v, W: e.W})
				}
			}
			edges = graph.CombineParallel(out)
			c.AccessRange(base, uint64(3*len(edges)))
			c.Ops(uint64(len(edges)) * 8) // sort proxy
			for v := range comp {
				comp[v] = labels[comp[v]]
			}
			nCur = len(seen)
		}
		if nCur < 2 {
			continue
		}
		cg := &graph.Graph{N: nCur, Edges: edges}
		arena := &ksArena{c: c, bases: map[int]uint64{}}
		v := ksRecurseKernel(c, arena, 0, graph.MatrixFromGraph(cg).W, nCur, st)
		if v < best {
			best = v
		}
	}
	deg := g.Degrees()
	for _, d := range deg {
		if d < best {
			best = d
		}
	}
	c.Ops(uint64(g.N))
	return best
}
