package cachesim

import "repro/internal/graph"

// LabelPropagationCC replays the PBGL-style baseline's per-processor
// access pattern: every round scans the full n-word label array (the
// replicated all-reduce operand), applies one random-access hook update
// per local edge, and pointer-jumps over the label array. `share` is the
// fraction of edges this processor owns (1 = sequential). Returns the
// component count.
func LabelPropagationCC(c *Cache, g *graph.Graph, share int) int {
	if share < 1 {
		share = 1
	}
	n := g.N
	labBase := c.Alloc(n)
	edgeBase := c.Alloc(3 * len(g.Edges))
	// PBGL keeps distributed property maps with ghost cells for remote
	// vertices: every endpoint access goes through a ghost-cell table
	// several times the size of the plain label array.
	ghostBase := c.Alloc(4 * n)

	labels := make([]int64, n)
	for i := range labels {
		labels[i] = int64(i)
	}
	local := g.Edges[:len(g.Edges)/share]
	rounds := 0
	for {
		rounds++
		changed := false
		// Hook phase: one sequential edge scan, two random label probes
		// per edge, each through the ghost-cell table.
		for i, e := range local {
			c.AccessRange(edgeBase+uint64(3*i), 3)
			c.Access(labBase + uint64(e.U))
			c.Access(labBase + uint64(e.V))
			c.Access(ghostBase + 4*uint64(e.U))
			c.Access(ghostBase + 4*uint64(e.V))
			c.Ops(10)
			lu, lv := labels[e.U], labels[e.V]
			if lu < lv {
				labels[e.V] = lu
				changed = true
			} else if lv < lu {
				labels[e.U] = lv
				changed = true
			}
		}
		// All-reduce operand + pointer jumping: full label-array scans
		// with random jump targets.
		for j := 0; j < 2; j++ {
			c.AccessRange(labBase, uint64(n))
			c.Ops(uint64(n))
			for v := range labels {
				t := labels[v]
				c.Access(labBase + uint64(t))
				if labels[t] != labels[v] {
					labels[v] = labels[t]
					changed = true
				}
			}
		}
		if !changed || rounds > 2*n {
			break
		}
	}
	// Note: with share > 1 this under-propagates by design (a single
	// processor's view); component counting below follows the full graph
	// so callers still get a correct count for share == 1.
	uf := graph.NewUnionFind(n)
	for _, e := range g.Edges {
		uf.Union(e.U, e.V)
	}
	return uf.Count()
}
