// Package planner implements the cost-model query planner: per
// (snapshot, algorithm, params) it scores every registered kernel × p
// candidate with §5's fitted performance model T = A·Comp +
// B·Volume·log₂p + C·Supersteps + D and dispatches the winner. Model
// constants are fitted per kernel from a startup calibration suite
// (calibrate.go) and, in adaptive mode, refitted from live execution
// samples, so predicted-vs-actual error self-corrects toward the
// machine the daemon actually runs on.
//
// The planner never affects results — every portfolio kernel is
// result-equivalent (bit-identical CC labels, identical cut values; see
// the equivalence tests in internal/cc and internal/service) — only
// which machine shape computes them.
package planner

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/perfmodel"
)

// Mode selects the planner behavior.
type Mode string

const (
	// ModeOff disables planning: every query runs the default kernel at
	// the heuristic p (the pre-portfolio behavior).
	ModeOff Mode = "off"
	// ModeStatic plans from the startup calibration only.
	ModeStatic Mode = "static"
	// ModeAdaptive additionally refits each kernel's model from live
	// execution samples.
	ModeAdaptive Mode = "adaptive"
)

// ParseMode parses a -planner flag value. The empty string is ModeOff.
func ParseMode(s string) (Mode, error) {
	switch Mode(s) {
	case "", ModeOff:
		return ModeOff, nil
	case ModeStatic:
		return ModeStatic, nil
	case ModeAdaptive:
		return ModeAdaptive, nil
	}
	return ModeOff, fmt.Errorf("planner: unknown mode %q (want off|static|adaptive)", s)
}

// Decision is the planner's answer for one query: which kernel at which
// p, with the prediction that justified it and the default choice it
// displaced (the win-rate baseline).
type Decision struct {
	Kernel      string
	P           int
	PredictedMs float64
	// DefaultKernel/DefaultP/DefaultPredictedMs describe what the engine
	// would have run with the planner off: the default kernel at the
	// heuristic p.
	DefaultKernel      string
	DefaultP           int
	DefaultPredictedMs float64
	// Diverged marks a decision that differs from the default choice —
	// the denominator of the win rate.
	Diverged bool
	// Fallback marks a decision made without a calibrated model for the
	// default kernel (e.g. perfmodel.Fit failed on the calibration
	// samples): the default kernel runs and the planner_fallback counter
	// increments, never a silent default.
	Fallback bool
}

const (
	windowCap  = 256 // live samples retained per kernel
	refitEvery = 32  // adaptive refit cadence, in observations
	refitMin   = 8   // minimum window before any refit
)

type kernelState struct {
	model      *perfmodel.Model
	window     *perfmodel.Window
	sinceRefit int
}

// Planner scores kernel×p candidates and tracks its own accuracy.
type Planner struct {
	mode Mode

	mu      sync.Mutex
	state   map[string]*kernelState
	choices map[string]uint64
	// decisions counts Choose calls; fallbacks those without a usable
	// model. executed/diverged/wins track observed executions of planned
	// queries; refits counts adaptive model refreshes.
	decisions uint64
	fallbacks uint64
	executed  uint64
	diverged  uint64
	wins      uint64
	refits    uint64
	absErrSum float64 // Σ |predicted-actual|/actual over executed
	errCount  uint64
	calErr    string // startup calibration failure, surfaced in Snapshot
}

// New returns a planner in the given mode with no calibrated models;
// until Fit or SetModel installs one for a default kernel, every
// decision is a fallback.
func New(mode Mode) *Planner {
	return &Planner{
		mode:    mode,
		state:   make(map[string]*kernelState),
		choices: make(map[string]uint64),
	}
}

// Mode reports the planner's mode.
func (pl *Planner) Mode() Mode { return pl.mode }

func (pl *Planner) stateFor(kernel string) *kernelState {
	ks := pl.state[kernel]
	if ks == nil {
		ks = &kernelState{window: perfmodel.NewWindow(windowCap)}
		pl.state[kernel] = ks
	}
	return ks
}

// SetModel installs a fitted model for kernel, replacing any previous
// one. Tests use it to pin deterministic decisions.
func (pl *Planner) SetModel(kernel string, m *perfmodel.Model) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.stateFor(kernel).model = m
}

// Fit fits a model for kernel from measured samples, surfacing the
// perfmodel error instead of leaving a silent default: a kernel whose
// fit fails stays uncalibrated, and decisions needing it fall back
// (counted in Snapshot().Fallbacks). Successful samples also seed the
// kernel's live refit window.
func (pl *Planner) Fit(kernel string, samples []perfmodel.Sample) error {
	m, err := perfmodel.FitRobust(samples)
	if err != nil {
		return fmt.Errorf("planner: calibrating %q (%d samples): %w", kernel, len(samples), err)
	}
	pl.mu.Lock()
	defer pl.mu.Unlock()
	ks := pl.stateFor(kernel)
	ks.model = m
	for _, s := range samples {
		ks.window.Add(s)
	}
	return nil
}

// SetCalibrationError records a startup calibration failure so the stats
// snapshot surfaces it — the kernels whose fits failed stay uncalibrated
// and show up as fallbacks, never as silent defaults.
func (pl *Planner) SetCalibrationError(err error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if err != nil {
		pl.calErr = err.Error()
	} else {
		pl.calErr = ""
	}
}

// Calibrated returns the sorted names of kernels holding a fitted model.
func (pl *Planner) Calibrated() []string {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	var out []string
	for name, ks := range pl.state {
		if ks.model != nil {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// HeuristicP is the planner-off machine sizing: an explicit request is
// honored (clamped to maxP); otherwise p doubles while each processor
// would still hold more than 2·edgesPerProc edges. It is also the
// baseline the win rate measures against.
func HeuristicP(m, explicit, maxP int) int {
	if maxP < 1 {
		maxP = 1
	}
	if explicit > 0 {
		if explicit > maxP {
			return maxP
		}
		return explicit
	}
	const edgesPerProc = 4096
	p := 1
	for p < maxP && m/p > 2*edgesPerProc {
		p *= 2
	}
	if p > maxP {
		p = maxP
	}
	return p
}

// candidatePs enumerates the machine sizes scored for a BSP kernel:
// the pinned p when the request sets one, else powers of two up to and
// including maxP.
func candidatePs(explicit, maxP int) []int {
	if explicit > 0 {
		if explicit > maxP {
			explicit = maxP
		}
		return []int{explicit}
	}
	var ps []int
	for p := 1; p <= maxP; p *= 2 {
		ps = append(ps, p)
	}
	if ps[len(ps)-1] != maxP {
		ps = append(ps, maxP)
	}
	return ps
}

// Choose picks the kernel×p candidate with the lowest predicted time
// for alg on a graph with the given statistics. Ties and the
// no-usable-model case resolve to the default kernel at the heuristic
// p; candidates without a calibrated model, shared kernels under an
// explicit p>1, and kernels whose MaxN excludes the graph are skipped.
// Deterministic: registration order breaks kernel ties, ascending order
// breaks p ties.
func (pl *Planner) Choose(alg string, st GraphStats, par Params, explicitP, maxP int) Decision {
	if maxP < 1 {
		maxP = 1
	}
	hp := HeuristicP(st.M, explicitP, maxP)
	def := DefaultKernel(alg)

	pl.mu.Lock()
	defer pl.mu.Unlock()
	pl.decisions++

	if def == nil {
		pl.fallbacks++
		return Decision{P: hp, DefaultP: hp, Fallback: true}
	}
	defKS := pl.state[def.Name]
	if defKS == nil || defKS.model == nil {
		pl.fallbacks++
		pl.choices[def.Name]++
		return Decision{
			Kernel: def.Name, P: hp,
			DefaultKernel: def.Name, DefaultP: hp,
			Fallback: true,
		}
	}
	defPred := defKS.model.Predict(def.Cost(st, hp, par))

	bestK, bestP, bestPred := def.Name, hp, defPred
	for _, k := range KernelsFor(alg) {
		ks := pl.state[k.Name]
		if ks == nil || ks.model == nil {
			continue
		}
		if k.MaxN > 0 && st.N > k.MaxN {
			continue
		}
		var ps []int
		if k.Shared {
			if explicitP > 1 {
				continue
			}
			ps = []int{1}
		} else {
			ps = candidatePs(explicitP, maxP)
		}
		for _, p := range ps {
			if pred := ks.model.Predict(k.Cost(st, p, par)); pred < bestPred {
				bestK, bestP, bestPred = k.Name, p, pred
			}
		}
	}
	pl.choices[bestK]++
	return Decision{
		Kernel: bestK, P: bestP, PredictedMs: bestPred * 1000,
		DefaultKernel: def.Name, DefaultP: hp, DefaultPredictedMs: defPred * 1000,
		Diverged: bestK != def.Name || bestP != hp,
	}
}

// Observe feeds one completed execution back: s carries the measured
// cost profile and wall time (seconds), dec the decision that scheduled
// it (nil for unplanned executions, which still feed adaptive refits).
// Wins are divergent decisions whose measured time beat the predicted
// default-path time.
func (pl *Planner) Observe(kernel string, s perfmodel.Sample, dec *Decision) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if dec != nil && !dec.Fallback {
		pl.executed++
		actualMs := s.Time * 1000
		if dec.PredictedMs > 0 && actualMs > 0 {
			pl.absErrSum += math.Abs(dec.PredictedMs-actualMs) / actualMs
			pl.errCount++
		}
		if dec.Diverged {
			pl.diverged++
			if actualMs <= dec.DefaultPredictedMs {
				pl.wins++
			}
		}
	}
	if pl.mode != ModeAdaptive {
		return
	}
	ks := pl.stateFor(kernel)
	ks.window.Add(s)
	ks.sinceRefit++
	if ks.sinceRefit >= refitEvery && ks.window.Len() >= refitMin {
		ks.sinceRefit = 0
		if m, err := perfmodel.FitRobust(ks.window.Samples()); err == nil {
			ks.model = m
			pl.refits++
		}
	}
}

// ModelConstants is the JSON-ready form of a fitted model.
type ModelConstants struct {
	A float64 `json:"a"`
	B float64 `json:"b"`
	C float64 `json:"c"`
	D float64 `json:"d"`
}

// Snapshot is the planner block served under /v1/stats and exported to
// /metrics.
type Snapshot struct {
	Mode       string   `json:"mode"`
	Calibrated []string `json:"calibrated,omitempty"`
	// Decisions counts Choose calls; Fallbacks the subset decided without
	// a calibrated default model. Executed counts observed runs of
	// planned queries; Diverged those where the planner overrode the
	// default choice; Wins the overrides whose measured time beat the
	// predicted default path. Refits counts adaptive model refreshes.
	Decisions uint64 `json:"decisions"`
	Fallbacks uint64 `json:"fallbacks"`
	Executed  uint64 `json:"executed"`
	Diverged  uint64 `json:"diverged"`
	Wins      uint64 `json:"wins"`
	Refits    uint64 `json:"refits"`
	// WinRate is Wins/Diverged; MeanAbsErr is the mean of
	// |predicted-actual|/actual over executed planned queries.
	WinRate    float64                   `json:"win_rate"`
	MeanAbsErr float64                   `json:"mean_abs_err"`
	Choices    map[string]uint64         `json:"choices,omitempty"`
	Models     map[string]ModelConstants `json:"models,omitempty"`
	// CalibrationError is the startup calibration failure, if any; the
	// kernels it names stay uncalibrated and decisions needing them fall
	// back.
	CalibrationError string `json:"calibration_error,omitempty"`
}

// Snapshot captures the planner's counters and fitted constants.
func (pl *Planner) Snapshot() *Snapshot {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	sn := &Snapshot{
		Mode:             string(pl.mode),
		CalibrationError: pl.calErr,
		Decisions:        pl.decisions,
		Fallbacks:        pl.fallbacks,
		Executed:         pl.executed,
		Diverged:         pl.diverged,
		Wins:             pl.wins,
		Refits:           pl.refits,
	}
	if pl.diverged > 0 {
		sn.WinRate = float64(pl.wins) / float64(pl.diverged)
	}
	if pl.errCount > 0 {
		sn.MeanAbsErr = pl.absErrSum / float64(pl.errCount)
	}
	if len(pl.choices) > 0 {
		sn.Choices = make(map[string]uint64, len(pl.choices))
		for k, v := range pl.choices {
			sn.Choices[k] = v
		}
	}
	for name, ks := range pl.state {
		if ks.model == nil {
			continue
		}
		if sn.Models == nil {
			sn.Models = make(map[string]ModelConstants)
		}
		sn.Models[name] = ModelConstants{A: ks.model.A, B: ks.model.B, C: ks.model.C, D: ks.model.D}
		sn.Calibrated = append(sn.Calibrated, name)
	}
	sort.Strings(sn.Calibrated)
	return sn
}
