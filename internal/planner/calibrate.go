package planner

import (
	"errors"
	"math"
	"time"

	"repro/internal/bsp"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/perfmodel"
)

// calGraph is one calibration workload: a small deterministic graph plus
// the stats and params its cost formulas see.
type calGraph struct {
	alg string
	g   *graph.Graph
	st  GraphStats
	par Params
}

func calPath(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(int32(i), int32(i+1), 1)
	}
	return g
}

// calibrationSuite spans the regimes the formulas must discriminate:
// high-diameter paths, low-diameter random graphs, and several sizes of
// each, so the least-squares system sees independent variation in comp,
// volume, and supersteps. The two larger CC graphs anchor the slopes —
// without them the fit extrapolates serving-size queries from a cluster
// of near-identical small samples and the per-kernel ordering becomes a
// coin flip. All graphs are deterministic (fixed seeds).
func calibrationSuite() []calGraph {
	ccPar := Params{Epsilon: 0.5}
	var suite []calGraph
	for _, g := range []*graph.Graph{
		calPath(512),
		calPath(2048),
		calPath(8192),
		gen.ErdosRenyiM(256, 2048, 7, gen.Config{}),
		gen.ErdosRenyiM(1024, 8192, 7, gen.Config{}),
		gen.ErdosRenyiM(4096, 32768, 7, gen.Config{}),
		gen.WattsStrogatz(512, 8, 0.2, 7, gen.Config{}),
	} {
		suite = append(suite, calGraph{alg: "cc", g: g, st: StatsOf(g.Snapshot()), par: ccPar})
	}
	for _, g := range []*graph.Graph{
		gen.WattsStrogatz(128, 6, 0.2, 7, gen.Config{}),
		gen.WattsStrogatz(256, 6, 0.2, 7, gen.Config{}),
		gen.ErdosRenyiM(192, 768, 7, gen.Config{}),
		gen.ErdosRenyiM(384, 1536, 7, gen.Config{}),
	} {
		t := mincut.Trials(g.N, len(g.Edges), 0.9)
		if t > 12 {
			t = 12 // bound startup cost; the fit only needs the slope
		}
		suite = append(suite, calGraph{alg: "mincut", g: g, st: StatsOf(g.Snapshot()), par: Params{Trials: t}})
	}
	return suite
}

// calReps is how many times each calibration point runs; the fastest
// rep is kept. One-shot timings carry GC pauses and scheduler noise
// that a least-squares fit over a few dozen points cannot average out,
// and a single outlier can flip the fitted per-kernel ordering.
const calReps = 2

// CalibrateBuiltins measures every registered kernel over the built-in
// suite and fits its model: BSP kernels run on real machines at p in
// {1,2,4,8,16} (clamped to maxP — the spread in log₂p is what separates
// the volume constant from the intercept) with measured ledger
// features; shared kernels run on the calling goroutine with formula
// features, so their fit maps the same features Choose later predicts
// with. A kernel whose fit fails stays uncalibrated — decisions needing
// it fall back to the default kernel and count as planner fallbacks —
// and the joined error reports every such kernel rather than silently
// defaulting.
func (pl *Planner) CalibrateBuiltins(maxP int) error {
	if maxP < 1 {
		maxP = 1
	}
	suite := calibrationSuite()
	samples := make(map[string][]perfmodel.Sample)

	for _, p := range []int{1, 2, 4, 8, 16} {
		if p > maxP && p > 1 {
			break
		}
		mach, err := bsp.NewMachine(p)
		if err != nil {
			return err
		}
		// One throwaway run so first-use machine setup does not pollute
		// the first kernel's sample.
		if _, err := mach.Run(func(c *bsp.Comm) {
			c.AllReduce([]uint64{1}, bsp.OpSum)
		}); err != nil {
			return err
		}
		for _, cg := range suite {
			for _, k := range KernelsFor(cg.alg) {
				if k.bspBody == nil {
					continue
				}
				body, par := k.bspBody, cg.par
				n, edges := cg.g.N, cg.g.Edges
				var st *bsp.Stats
				best := math.MaxFloat64
				for rep := 0; rep < calReps; rep++ {
					start := time.Now()
					st, err = mach.Run(func(c *bsp.Comm) {
						body(c, n, blockLocal(edges, c), par)
					})
					if err != nil {
						return err
					}
					if t := time.Since(start).Seconds(); t < best {
						best = t
					}
				}
				samples[k.Name] = append(samples[k.Name], perfmodel.Sample{
					Comp:       float64(st.MaxOps),
					Volume:     float64(st.CommVolume),
					Supersteps: float64(st.Supersteps),
					P:          float64(p),
					Time:       best,
				})
			}
		}
	}
	for _, cg := range suite {
		for _, k := range KernelsFor(cg.alg) {
			if k.sharedRun == nil {
				continue
			}
			if k.MaxN > 0 && cg.g.N > k.MaxN {
				continue
			}
			best := math.MaxFloat64
			for rep := 0; rep < calReps; rep++ {
				start := time.Now()
				k.sharedRun(cg.g)
				if t := time.Since(start).Seconds(); t < best {
					best = t
				}
			}
			s := k.Cost(cg.st, 1, cg.par)
			s.Time = best
			samples[k.Name] = append(samples[k.Name], s)
		}
	}

	var errs []error
	for _, k := range Kernels() {
		ss := samples[k.Name]
		if len(ss) == 0 {
			continue
		}
		if err := pl.Fit(k.Name, ss); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}
