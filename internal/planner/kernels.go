package planner

import (
	"math"

	"repro/internal/bsp"
	"repro/internal/cc"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/perfmodel"
	"repro/internal/rng"
)

// GraphStats are the snapshot statistics the cost formulas consume —
// exactly what graph.(*Snapshot).Probe computes plus the sizes: n, m,
// the capped double-sweep diameter estimate, and the weight skew.
// WeightSkew rides along for the decision trace and future formulas; the
// shipped cost models are skew-invariant (the CC sparsifier samples
// unweighted and Stoer–Wagner is exact regardless of weights), and live
// refits absorb residual weight effects through measured time.
type GraphStats struct {
	N           int
	M           int
	EstDiameter int
	WeightSkew  float64
}

// Params are the per-query tuning knobs that change a kernel's cost
// profile: the CC sample-size exponent and the mincut trial count
// (already resolved from n, m, and the success probability by the
// caller, so formulas never re-derive it).
type Params struct {
	Epsilon float64
	Trials  int
}

// Kernel is one portfolio member: an algorithm implementation the
// planner can dispatch, with a closed-form cost profile for scoring and
// a self-contained calibration runner for fitting its model constants.
type Kernel struct {
	// Name identifies the kernel in cache keys, traces, and stats.
	// Unique across the whole portfolio.
	Name string
	// Algorithm is the query algorithm the kernel answers ("cc",
	// "mincut").
	Algorithm string
	// Default marks the kernel dispatched when the planner is off or
	// uncalibrated — the pre-portfolio behavior.
	Default bool
	// Shared marks a p=1 shared-memory kernel that runs with no BSP
	// machine at all; the planner only considers it when the request
	// does not pin p > 1.
	Shared bool
	// MaxN, when positive, bounds eligible graph sizes (Stoer–Wagner's
	// dense adjacency matrix is quadratic memory).
	MaxN int
	// Cost estimates the kernel's BSP cost profile on a graph with the
	// given statistics at machine size p. Predicted features approximate
	// the implementation's measured accounting (the fit maps measured
	// features to time, so formula bias shows up directly in the
	// prediction-vs-actual error the trace records).
	Cost func(st GraphStats, p int, par Params) perfmodel.Sample

	// Calibration runners (exactly one is set): bspBody runs the kernel
	// inside a BSP machine over a block-distributed edge array; sharedRun
	// runs it on the calling goroutine.
	bspBody   func(c *bsp.Comm, n int, local []graph.Edge, par Params)
	sharedRun func(g *graph.Graph)
}

// Portfolio kernel names. The service's dispatch switch and cache keys
// use these, so they are part of the query identity.
const (
	KernelCCSampling   = "sampling"    // cc.Parallel — iterated sampling, O(1) supersteps
	KernelCCLowRound   = "lowround"    // cc.LowRound — hook + full closure, O(log d) rounds
	KernelCCLabelProp  = "labelprop"   // cc.LabelPropagation — PBGL baseline
	KernelCCShared     = "shared"      // cc.SharedAdaptive — p=1, no machine
	KernelMCKargerSt   = "kargerstein" // mincut.Parallel — contraction trials
	KernelMCStoerWagnr = "stoerwagner" // mincut.StoerWagner — deterministic O(n³), p=1
)

var registry []*Kernel

// Register adds a kernel to the portfolio. Not safe for concurrent use;
// call from init or before serving starts.
func Register(k *Kernel) { registry = append(registry, k) }

// Kernels returns the whole portfolio in registration order.
func Kernels() []*Kernel { return registry }

// KernelsFor returns the portfolio members answering alg, in
// registration order (deterministic tie-breaking relies on this).
func KernelsFor(alg string) []*Kernel {
	var out []*Kernel
	for _, k := range registry {
		if k.Algorithm == alg {
			out = append(out, k)
		}
	}
	return out
}

// DefaultKernel returns alg's default member, or nil when alg has no
// registered portfolio.
func DefaultKernel(alg string) *Kernel {
	for _, k := range registry {
		if k.Algorithm == alg && k.Default {
			return k
		}
	}
	return nil
}

// Lookup finds a kernel by algorithm and name.
func Lookup(alg, name string) *Kernel {
	for _, k := range registry {
		if k.Algorithm == alg && k.Name == name {
			return k
		}
	}
	return nil
}

// xVol is the volume model of one n-word AllReduce/Broadcast-style
// collective: the implementations gather to a root and broadcast back,
// so the root moves ~(p-1)·words in each direction. Zero at p=1 (the
// collectives short-circuit locally).
func xVol(p int, words float64) float64 {
	if p <= 1 {
		return 0
	}
	return 2 * float64(p-1) * words
}

func lg2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

func init() {
	// ---- CC portfolio ----
	Register(&Kernel{
		Name: KernelCCSampling, Algorithm: "cc", Default: true,
		Cost: func(st GraphStats, p int, par Params) perfmodel.Sample {
			n, m := float64(st.N), float64(st.M)
			eps := par.Epsilon
			if eps <= 0 {
				eps = 0.5
			}
			s := math.Min(math.Pow(n, 1+eps/2), m)
			const rounds = 2 // O(1) w.h.p.; empirically 2 on the suite
			return perfmodel.Sample{
				Comp:       rounds * (m/float64(p) + n + s),
				Volume:     rounds * (2*s + xVol(p, n)),
				Supersteps: 6*rounds + 2,
				P:          float64(p),
			}
		},
		bspBody: func(c *bsp.Comm, n int, local []graph.Edge, par Params) {
			st := rng.New(42, uint32(c.Rank()), 0)
			cc.Parallel(c, n, local, st, cc.Options{Epsilon: par.Epsilon})
		},
	})
	Register(&Kernel{
		Name: KernelCCLowRound, Algorithm: "cc",
		Cost: func(st GraphStats, p int, par Params) perfmodel.Sample {
			n, m := float64(st.N), float64(st.M)
			d := float64(st.EstDiameter)
			// Full per-round closure makes the effective round count
			// doubly logarithmic in the diameter on id-coherent inputs
			// (exactly 2 on generated paths/grids); the double log is the
			// conservative middle ground between that and the O(log d)
			// worst case.
			rounds := 2 + math.Log2(1+lg2(1+d))
			return perfmodel.Sample{
				Comp:       rounds * (m/float64(p) + 2*n),
				Volume:     rounds * (xVol(p, n) + xVol(p, 1)),
				Supersteps: 4*rounds + 2,
				P:          float64(p),
			}
		},
		bspBody: func(c *bsp.Comm, n int, local []graph.Edge, par Params) {
			cc.LowRound(c, n, local, cc.Options{})
		},
	})
	Register(&Kernel{
		Name: KernelCCLabelProp, Algorithm: "cc",
		Cost: func(st GraphStats, p int, par Params) perfmodel.Sample {
			n, m := float64(st.N), float64(st.M)
			d := float64(st.EstDiameter)
			// Hook plus two pointer jumps quadruples the propagation reach
			// per round: Θ(log₄ d) rounds, each with an n-word AllReduce —
			// the superstep bill the portfolio exists to avoid.
			rounds := 2 + lg2(1+d)/2
			return perfmodel.Sample{
				Comp:       rounds * (m/float64(p) + 4*n),
				Volume:     rounds * (xVol(p, n) + xVol(p, 1)),
				Supersteps: 4 * rounds,
				P:          float64(p),
			}
		},
		bspBody: func(c *bsp.Comm, n int, local []graph.Edge, par Params) {
			cc.LabelPropagation(c, n, local)
		},
	})
	Register(&Kernel{
		Name: KernelCCShared, Algorithm: "cc", Shared: true,
		Cost: func(st GraphStats, p int, par Params) perfmodel.Sample {
			n, m := float64(st.N), float64(st.M)
			// CSR build + neighbor-sampling passes + the non-giant scan;
			// zero volume, zero supersteps, zero machine spin-up.
			return perfmodel.Sample{Comp: 2 * (n + m), P: 1}
		},
		sharedRun: func(g *graph.Graph) { cc.SharedAdaptive(g) },
	})

	// ---- Mincut portfolio ----
	Register(&Kernel{
		Name: KernelMCKargerSt, Algorithm: "mincut", Default: true,
		Cost: func(st GraphStats, p int, par Params) perfmodel.Sample {
			n, m := float64(st.N), float64(st.M)
			t := float64(par.Trials)
			if t < 1 {
				t = 1
			}
			pe := math.Min(float64(p), t) // trials bound usable parallelism
			perTrial := m + n*lg2(n)
			return perfmodel.Sample{
				Comp:       math.Ceil(t/pe)*perTrial + m + n,
				Volume:     3*m*btof(p > 1) + xVol(p, n),
				Supersteps: 14,
				P:          float64(p),
			}
		},
		bspBody: func(c *bsp.Comm, n int, local []graph.Edge, par Params) {
			st := rng.New(42, uint32(c.Rank()), 0)
			mincut.Parallel(c, n, local, st, mincut.Options{
				SuccessProb: 0.9,
				MaxTrials:   par.Trials,
			})
		},
	})
	Register(&Kernel{
		Name: KernelMCStoerWagnr, Algorithm: "mincut", Shared: true,
		MaxN: mincut.StoerWagnerMaxN,
		Cost: func(st GraphStats, p int, par Params) perfmodel.Sample {
			n := float64(st.N)
			// n-1 maximum-adjacency phases of O(n²) row scans.
			return perfmodel.Sample{Comp: n*n*n/2 + n*n, P: 1}
		},
		sharedRun: func(g *graph.Graph) { mincut.StoerWagner(g) },
	})
}

func btof(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// StatsOf derives the planner's cost-model inputs from a snapshot,
// running (or reusing) its cached statistics probe.
func StatsOf(s *graph.Snapshot) GraphStats {
	pr := s.Probe()
	return GraphStats{
		N:           s.N(),
		M:           s.M(),
		EstDiameter: pr.EstDiameter,
		WeightSkew:  pr.WeightSkew,
	}
}

// blockLocal slices a replicated edge array for one rank, the same block
// distribution the service's kernel bodies use.
func blockLocal(edges []graph.Edge, c *bsp.Comm) []graph.Edge {
	lo, hi := dist.BlockRange(len(edges), c.Size(), c.Rank())
	return edges[lo:hi]
}
