package planner

import (
	"testing"

	"repro/internal/perfmodel"
)

// bspModel/sharedModel are the fixed constants the deterministic tests
// pin decisions with: 1ns/op, 2ns/word (scaled by log2 p), 1µs/superstep,
// 50µs of machine overhead for BSP kernels; no overhead for shared ones.
func bspModel() *perfmodel.Model    { return &perfmodel.Model{A: 1e-9, B: 2e-9, C: 1e-6, D: 5e-5} }
func sharedModel() *perfmodel.Model { return &perfmodel.Model{A: 1e-9, D: 1e-6} }

func calibratedCC(mode Mode) *Planner {
	pl := New(mode)
	pl.SetModel(KernelCCSampling, bspModel())
	pl.SetModel(KernelCCLowRound, bspModel())
	pl.SetModel(KernelCCLabelProp, bspModel())
	pl.SetModel(KernelCCShared, sharedModel())
	return pl
}

func TestParseMode(t *testing.T) {
	for s, want := range map[string]Mode{"": ModeOff, "off": ModeOff, "static": ModeStatic, "adaptive": ModeAdaptive} {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
}

func TestHeuristicP(t *testing.T) {
	cases := []struct{ m, explicit, maxP, want int }{
		{5000, 0, 16, 1},
		{10000, 0, 16, 2},
		{20000, 0, 16, 4},
		{40000, 0, 8, 8},
		{1 << 20, 0, 16, 16},
		{100, 9, 16, 9},
		{100, 99, 16, 16},
	}
	for _, c := range cases {
		if got := HeuristicP(c.m, c.explicit, c.maxP); got != c.want {
			t.Errorf("HeuristicP(%d,%d,%d) = %d, want %d", c.m, c.explicit, c.maxP, got, c.want)
		}
	}
}

func TestChooseFallbackWithoutModels(t *testing.T) {
	pl := New(ModeStatic)
	d := pl.Choose("cc", GraphStats{N: 1000, M: 20000}, Params{}, 0, 16)
	if !d.Fallback {
		t.Fatal("uncalibrated planner did not fall back")
	}
	if d.Kernel != KernelCCSampling {
		t.Fatalf("fallback kernel = %q, want default %q", d.Kernel, KernelCCSampling)
	}
	if d.P != HeuristicP(20000, 0, 16) {
		t.Fatalf("fallback p = %d, want heuristic %d", d.P, HeuristicP(20000, 0, 16))
	}
	if sn := pl.Snapshot(); sn.Fallbacks != 1 || sn.Decisions != 1 {
		t.Fatalf("fallback counters = %+v", sn)
	}
}

func TestChooseSharedForSmallGraphs(t *testing.T) {
	pl := calibratedCC(ModeStatic)
	d := pl.Choose("cc", GraphStats{N: 500, M: 2000, EstDiameter: 6, WeightSkew: 1}, Params{Epsilon: 0.5}, 0, 16)
	if d.Kernel != KernelCCShared || d.P != 1 {
		t.Fatalf("small graph decision = %+v, want shared at p=1", d)
	}
	if !d.Diverged && d.DefaultP == 1 && d.DefaultKernel == KernelCCSampling {
		// shared at p=1 vs sampling at p=1 — still a kernel divergence.
		t.Fatalf("shared pick not marked diverged: %+v", d)
	}
}

func TestChooseRespectsExplicitP(t *testing.T) {
	pl := calibratedCC(ModeStatic)
	st := GraphStats{N: 100001, M: 100000, EstDiameter: 100000, WeightSkew: 1}
	d := pl.Choose("cc", st, Params{Epsilon: 0.5}, 16, 16)
	if d.P != 16 {
		t.Fatalf("explicit p=16 not honored: %+v", d)
	}
	if d.Kernel == KernelCCShared {
		t.Fatalf("shared kernel chosen despite explicit p=16: %+v", d)
	}
	if d.Kernel == KernelCCLabelProp {
		t.Fatalf("label propagation chosen on a high-diameter path: %+v", d)
	}
}

func TestChooseMincutRouting(t *testing.T) {
	pl := New(ModeStatic)
	// Represent a regime where contraction trials can't win: heavy BSP
	// overhead vs a cheap deterministic scan.
	pl.SetModel(KernelMCKargerSt, &perfmodel.Model{A: 1e-9, B: 2e-9, C: 1e-6, D: 5e-3})
	pl.SetModel(KernelMCStoerWagnr, sharedModel())
	small := GraphStats{N: 150, M: 500, WeightSkew: 1}
	if d := pl.Choose("mincut", small, Params{Trials: 40}, 0, 8); d.Kernel != KernelMCStoerWagnr {
		t.Fatalf("small-n mincut = %+v, want stoerwagner", d)
	}
	big := GraphStats{N: 5000, M: 40000, WeightSkew: 1}
	if d := pl.Choose("mincut", big, Params{Trials: 40}, 0, 8); d.Kernel != KernelMCKargerSt {
		t.Fatalf("large-n mincut = %+v, want kargerstein (stoerwagner is MaxN-gated)", d)
	}
}

func TestObserveWinRateAndError(t *testing.T) {
	pl := calibratedCC(ModeStatic)
	st := GraphStats{N: 500, M: 2000, EstDiameter: 6, WeightSkew: 1}
	d := pl.Choose("cc", st, Params{Epsilon: 0.5}, 0, 16)
	if !d.Diverged {
		t.Fatalf("expected divergent decision, got %+v", d)
	}
	// Measured twice as fast as predicted for the default path: a win.
	s := perfmodel.Sample{Comp: 5000, P: 1, Time: d.DefaultPredictedMs / 2 / 1000}
	pl.Observe(d.Kernel, s, &d)
	sn := pl.Snapshot()
	if sn.Executed != 1 || sn.Diverged != 1 || sn.Wins != 1 {
		t.Fatalf("win counters = %+v", sn)
	}
	if sn.WinRate != 1 {
		t.Fatalf("win rate = %v, want 1", sn.WinRate)
	}
	if sn.MeanAbsErr <= 0 {
		t.Fatalf("mean abs err = %v, want > 0", sn.MeanAbsErr)
	}
}

func TestObserveAdaptiveRefit(t *testing.T) {
	pl := calibratedCC(ModeAdaptive)
	s := perfmodel.Sample{Comp: 1e6, Volume: 1e4, Supersteps: 10, P: 2, Time: 1e-3}
	for i := 0; i < refitEvery; i++ {
		s.Comp += 1000 // vary so the window is not degenerate
		s.Time += 1e-6
		pl.Observe(KernelCCSampling, s, nil)
	}
	if sn := pl.Snapshot(); sn.Refits == 0 {
		t.Fatalf("adaptive planner never refitted: %+v", sn)
	}
}

func TestStaticModeNeverRefits(t *testing.T) {
	pl := calibratedCC(ModeStatic)
	s := perfmodel.Sample{Comp: 1e6, P: 1, Time: 1e-3}
	for i := 0; i < 3*refitEvery; i++ {
		pl.Observe(KernelCCSampling, s, nil)
	}
	if sn := pl.Snapshot(); sn.Refits != 0 {
		t.Fatalf("static planner refitted: %+v", sn)
	}
}

func TestFitSurfacesError(t *testing.T) {
	pl := New(ModeStatic)
	err := pl.Fit(KernelCCSampling, []perfmodel.Sample{{Comp: 1, Time: 1}})
	if err == nil {
		t.Fatal("Fit with 1 sample did not error")
	}
	if got := pl.Calibrated(); len(got) != 0 {
		t.Fatalf("failed fit left a model: %v", got)
	}
	// The planner stays usable: decisions fall back, counted.
	d := pl.Choose("cc", GraphStats{N: 10, M: 10}, Params{}, 0, 4)
	if !d.Fallback {
		t.Fatal("expected fallback after failed fit")
	}
}

func TestCalibrateBuiltins(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration runs real kernels")
	}
	pl := New(ModeStatic)
	if err := pl.CalibrateBuiltins(4); err != nil {
		t.Fatalf("calibration error: %v", err)
	}
	want := []string{KernelCCLabelProp, KernelCCLowRound, KernelCCSampling, KernelCCShared,
		KernelMCKargerSt, KernelMCStoerWagnr}
	got := pl.Calibrated()
	if len(got) != len(want) {
		t.Fatalf("calibrated kernels = %v, want %v", got, want)
	}
	// A calibrated planner must never fall back.
	d := pl.Choose("cc", GraphStats{N: 1000, M: 5000, EstDiameter: 10, WeightSkew: 1}, Params{Epsilon: 0.5}, 0, 4)
	if d.Fallback || d.Kernel == "" {
		t.Fatalf("calibrated planner fell back: %+v", d)
	}
}
