package sparsify

import (
	"math"
	"testing"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// runWeighted distributes g over p processors and draws a weighted sample
// of size s, returning it (from the root).
func runWeighted(t *testing.T, g *graph.Graph, p, s int, seed uint64) []graph.Edge {
	t.Helper()
	var sample []graph.Edge
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		_, local := dist.ScatterGraph(c, 0, in)
		st := rng.New(seed, uint32(c.Rank()), 0)
		got := Weighted(c, 0, local, s, st)
		if c.Rank() == 0 {
			sample = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return sample
}

func TestWeightedSampleSize(t *testing.T) {
	g := gen.ErdosRenyiM(60, 400, 3, gen.Config{MaxWeight: 20})
	for _, p := range []int{1, 2, 4} {
		sample := runWeighted(t, g, p, 150, 42)
		if len(sample) != 150 {
			t.Errorf("p=%d: sample size %d, want 150", p, len(sample))
		}
		for _, e := range sample {
			if int(e.U) >= g.N || int(e.V) >= g.N || e.W == 0 {
				t.Fatalf("p=%d: invalid sampled edge %v", p, e)
			}
		}
	}
}

func TestWeightedProportionalToWeight(t *testing.T) {
	// A 4-edge graph with very skewed weights; draw many samples and
	// check the empirical frequency of the heavy edge (Lemma 3.1).
	g := graph.New(5)
	g.AddEdge(0, 1, 80)
	g.AddEdge(1, 2, 10)
	g.AddEdge(2, 3, 5)
	g.AddEdge(3, 4, 5)
	sample := runWeighted(t, g, 2, 20000, 7)
	heavy := 0
	for _, e := range sample {
		if e.W == 80 {
			heavy++
		}
	}
	rate := float64(heavy) / float64(len(sample))
	if math.Abs(rate-0.8) > 0.02 {
		t.Errorf("heavy edge rate = %v, want ~0.8", rate)
	}
}

func TestWeightedPositionUniformity(t *testing.T) {
	// Lemma 3.1 requires every position of the sample to have the same
	// distribution. The heavy edge must appear at the first position with
	// the same frequency as anywhere else. All edges live on processor 0
	// to stress the permutation step.
	g := graph.New(3)
	g.AddEdge(0, 1, 90)
	g.AddEdge(1, 2, 10)
	firstHeavy := 0
	const trials = 400
	for trial := 0; trial < trials; trial++ {
		sample := runWeighted(t, g, 3, 5, uint64(trial+1000))
		if sample[0].W == 90 {
			firstHeavy++
		}
	}
	rate := float64(firstHeavy) / trials
	if math.Abs(rate-0.9) > 0.07 {
		t.Errorf("P[first sample = heavy] = %v, want ~0.9", rate)
	}
}

func TestWeightedEmptyGraph(t *testing.T) {
	g := graph.New(10) // no edges
	sample := runWeighted(t, g, 3, 50, 1)
	if len(sample) != 0 {
		t.Errorf("sampled %d edges from empty graph", len(sample))
	}
}

func TestWeightedNonRootGetsNil(t *testing.T) {
	g := gen.Cycle(20, 1)
	_, err := bsp.Run(3, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		_, local := dist.ScatterGraph(c, 0, in)
		st := rng.New(5, uint32(c.Rank()), 0)
		got := Weighted(c, 0, local, 10, st)
		if c.Rank() != 0 && got != nil {
			t.Errorf("rank %d received a sample", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSupersteps(t *testing.T) {
	// O(1) supersteps regardless of p and s.
	g := gen.ErdosRenyiM(100, 800, 4, gen.Config{MaxWeight: 3})
	var steps [2]int
	for i, p := range []int{2, 8} {
		st, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			_, local := dist.ScatterGraph(c, 0, in)
			stream := rng.New(9, uint32(c.Rank()), 0)
			Weighted(c, 0, local, 200, stream)
		})
		if err != nil {
			t.Fatal(err)
		}
		steps[i] = st.Supersteps
	}
	if steps[0] != steps[1] {
		t.Errorf("superstep count depends on p: %v", steps)
	}
	if steps[0] > 8 {
		t.Errorf("sparsification used %d supersteps, want O(1) small", steps[0])
	}
}

func runUnweighted(t *testing.T, g *graph.Graph, p, s int, seed uint64) []graph.Edge {
	t.Helper()
	var sample []graph.Edge
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		st := rng.New(seed, uint32(c.Rank()), 0)
		got := Unweighted(c, 0, local, s, n, 0.5, st)
		if c.Rank() == 0 {
			sample = got
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return sample
}

func TestUnweightedSmallSlicesTakenWhole(t *testing.T) {
	// With few local edges (µ below the Chernoff threshold), the whole
	// slice is contributed, so every edge must appear.
	g := gen.Cycle(30, 1)
	sample := runUnweighted(t, g, 3, 10, 2)
	if len(sample) != 30 {
		t.Errorf("sample has %d edges, want all 30 (threshold regime)", len(sample))
	}
}

func TestUnweightedOversampleSize(t *testing.T) {
	// Large slices: expect about (1+δ)·s edges in total.
	g := gen.ErdosRenyiM(2000, 40000, 6, gen.Config{})
	s := 4000
	sample := runUnweighted(t, g, 4, s, 3)
	lo, hi := s, 2*s
	if len(sample) < lo || len(sample) > hi {
		t.Errorf("oversample size %d outside [%d,%d]", len(sample), lo, hi)
	}
}

func TestUnweightedEmpty(t *testing.T) {
	g := graph.New(5)
	sample := runUnweighted(t, g, 2, 10, 1)
	if len(sample) != 0 {
		t.Errorf("sampled %d from empty graph", len(sample))
	}
}

func TestUnweightedCoversComponents(t *testing.T) {
	// Sampling enough edges must w.h.p. hit every component of a graph
	// made of many small cliques — the property CC relies on across
	// iterations. Here s >= m so the sample is everything.
	var g = graph.New(40)
	for c := 0; c < 10; c++ {
		base := int32(c * 4)
		for i := int32(0); i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				g.AddEdge(base+i, base+j, 1)
			}
		}
	}
	sample := runUnweighted(t, g, 4, g.M(), 9)
	sub := &graph.Graph{N: 40, Edges: sample}
	_, k := sub.ConnectedComponents()
	if k != 10 {
		t.Errorf("sampled subgraph has %d components, want 10", k)
	}
}
