// Package sparsify implements the paper's communication-avoiding
// sparsification (§3.1): drawing s edges from a distributed edge array,
// each independently with probability proportional to its weight, in O(1)
// supersteps and O(s + p) communication volume (Lemmas 3.1 and 3.2).
//
// Two variants are provided: the weighted scheme used by iterated
// sampling for minimum cuts, and the cheaper unweighted oversampling
// scheme (Chernoff-bounded) used by the connected-components algorithm,
// which skips the root's distribution step and samples O(1) per edge.
package sparsify

import (
	"math"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/graph"
	"repro/internal/rng"
	xsort "repro/internal/sort"
)

// Weighted draws s edges from the distributed edge array, each slot
// independently holding edge e with probability w(e)/W (with
// replacement). The permuted sample is returned at the root; other ranks
// return nil. It takes O(1) supersteps, O(s+p) communication volume,
// O(s log n + m/p) time (Lemma 3.2).
//
// Steps: ① gather per-slice weights W_i at the root; ② the root draws the
// multinomial split of s slots over processors and scatters the counts;
// ③ each processor draws its quota from its slice by binary search over
// local cumulative weights; ④ the root gathers and randomly permutes the
// sample (the order matters for prefix selection downstream).
func Weighted(c *bsp.Comm, root int, local []graph.Edge, s int, st *rng.Stream) []graph.Edge {
	p := c.Size()

	// ① Local weight sums, gathered at the root.
	var wi uint64
	for _, e := range local {
		wi += e.W
	}
	c.Ops(uint64(len(local)))
	sums := c.Gather(root, []uint64{wi})

	// ② Root distributes the s slots over processors proportionally to
	// W_i. The per-rank counts are one-word windows into a single pooled
	// buffer (the samplers do not retain their weight slices, so the
	// borrowed buffers go straight back to the pool).
	var counts [][]uint64
	if c.Rank() == root {
		weights := xsort.BorrowWords(p)
		var total uint64
		for r := 0; r < p; r++ {
			weights[r] = sums[r][0]
			total += sums[r][0]
		}
		flat := xsort.BorrowWords(p)
		counts = make([][]uint64, p)
		for r := range counts {
			flat[r] = 0
			counts[r] = flat[r : r+1 : r+1]
		}
		if total > 0 {
			alias := rng.NewAliasSampler(weights)
			for k := 0; k < s; k++ {
				counts[alias.Sample(st)][0]++
			}
			c.Ops(uint64(s))
		}
		xsort.ReleaseWords(weights)
		defer xsort.ReleaseWords(flat)
	}
	quota := int(c.Scatter(root, counts)[0])

	// ③ Draw the local quota by weight-proportional selection.
	chosen := make([]graph.Edge, 0, quota)
	if quota > 0 {
		weights := xsort.BorrowWords(len(local))
		for i, e := range local {
			weights[i] = e.W
		}
		ps := rng.NewPrefixSampler(weights)
		xsort.ReleaseWords(weights)
		for k := 0; k < quota; k++ {
			chosen = append(chosen, local[ps.Sample(st)])
		}
		c.Ops(uint64(len(local)) + uint64(quota)*uint64(math.Ilogb(float64(len(local)+2))+1))
	}
	gathered := gatherEdges(c, root, chosen)
	if c.Rank() != root {
		return nil
	}

	// ④ Random permutation at the root, required so that every edge is
	// equally likely at every sample position (Lemma 3.1).
	st.Shuffle(len(gathered), func(i, j int) {
		gathered[i], gathered[j] = gathered[j], gathered[i]
	})
	c.Ops(uint64(len(gathered)))
	return gathered
}

// Unweighted draws an (over)sample of about s edges uniformly from the
// distributed edge array without the root round-trip: each processor
// expects µ_i = s·m_i/m slots and draws ⌈(1+δ)µ_i⌉ uniform local edges,
// or contributes its whole slice when µ_i is below the Chernoff threshold
// (9 ln n)/δ². The combined sample is returned at the root (other ranks
// nil). Sampling is O(1) per edge; no permutation is applied — the
// connected-components consumer is order-insensitive.
func Unweighted(c *bsp.Comm, root int, local []graph.Edge, s, n int, delta float64, st *rng.Stream) []graph.Edge {
	counts := c.AllReduce([]uint64{uint64(len(local))}, bsp.OpSum)
	m := counts[0]
	var chosen []graph.Edge
	if m > 0 && len(local) > 0 {
		mu := float64(s) * float64(len(local)) / float64(m)
		threshold := 9 * math.Log(float64(n)+2) / (delta * delta)
		if mu < threshold || int(math.Ceil((1+delta)*mu)) >= len(local) {
			chosen = local
		} else {
			k := int(math.Ceil((1 + delta) * mu))
			chosen = make([]graph.Edge, k)
			for i := range chosen {
				chosen[i] = local[st.Intn(len(local))]
			}
			c.Ops(uint64(k))
		}
	}
	return gatherEdges(c, root, chosen)
}

// gatherEdges gathers edge slices at the root (3 words per edge). The
// payload is built in a runtime-pooled buffer and handed off owned, so
// the gather is copy- and allocation-free in steady state.
func gatherEdges(c *bsp.Comm, root int, es []graph.Edge) []graph.Edge {
	parts := c.GatherOwned(root, dist.AppendEdges(c.Buffer(3 * len(es))[:0], es))
	if c.Rank() != root {
		return nil
	}
	total := 0
	for _, part := range parts {
		total += len(part) / 3
	}
	out := make([]graph.Edge, 0, total)
	for _, part := range parts {
		out = dist.DecodeEdgesAppend(out, part)
	}
	return out
}
