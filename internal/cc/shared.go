package cc

import "repro/internal/graph"

// sharedLinkRounds is the number of per-vertex neighbor-sampling passes
// SharedAdaptive runs before it decides which component is the giant one.
// Two passes (link each vertex to its first two neighbors) is the sweet
// spot Sutton et al. report: on graphs with a dominant component it
// already merges most vertices into it.
const sharedLinkRounds = 2

// sharedProbeSize bounds the component-frequency sample used to identify
// the giant component.
const sharedProbeSize = 1024

// SharedAdaptive is the planner's p=1 fast path: an adaptive
// work-avoiding connected-components kernel in the spirit of Sutton,
// Ben-Nun, and Barak's Afforest. It runs on the calling goroutine with
// no BSP machine, no mailboxes, and no barriers — for small or warm
// queries the fixed cost of spinning up even a p=1 machine dominates the
// actual labelling work, and this path skips all of it.
//
// The adaptivity is Afforest's component-sampling short cut: first link
// every vertex to its first sharedLinkRounds neighbors (cheap, and on
// real graphs enough to assemble the giant component), then probe a
// small vertex sample to find the most frequent component, and finally
// scan the remaining adjacency only for vertices *outside* that
// component. Vertices already absorbed into the giant component — most
// of them, on skewed real-world inputs — never touch the rest of their
// edge lists. Correctness does not depend on the sample: an edge whose
// endpoints are in different components always has a non-giant endpoint,
// and that endpoint's scan performs the union.
//
// Labels are canonical first-occurrence dense, identical to
// cc.Sequential and the BSP kernels.
func SharedAdaptive(g *graph.Graph) *Result {
	n := g.N
	if n == 0 {
		return &Result{Labels: []int32{}, Count: 0}
	}
	c := graph.BuildCSR(g)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}

	// Phase 1: neighbor sampling — link each vertex to its first
	// sharedLinkRounds neighbors.
	for r := 0; r < sharedLinkRounds; r++ {
		for v := int32(0); int(v) < n; v++ {
			nb := c.Neighbors(v)
			if r < len(nb) {
				union(v, nb[r])
			}
		}
	}

	// Identify the giant component from a strided vertex probe.
	stride := n / sharedProbeSize
	if stride < 1 {
		stride = 1
	}
	counts := make(map[int32]int, sharedProbeSize)
	for v := 0; v < n; v += stride {
		counts[find(int32(v))]++
	}
	giant, best := int32(-1), 0
	for root, k := range counts {
		if k > best || (k == best && root < giant) {
			giant, best = root, k
		}
	}

	// Phase 2: scan the remaining adjacency of non-giant vertices only.
	for v := int32(0); int(v) < n; v++ {
		if find(v) == giant {
			continue
		}
		nb := c.Neighbors(v)
		if len(nb) > sharedLinkRounds {
			for _, w := range nb[sharedLinkRounds:] {
				union(v, w)
			}
		}
	}

	res := &Result{Labels: make([]int32, n)}
	remap := graph.GetRemap(n)
	for v := int32(0); int(v) < n; v++ {
		res.Labels[v] = remap.Of(find(v))
	}
	res.Count = remap.Len()
	graph.PutRemap(remap)
	return res
}
