package cc

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// SharedMemory is the asynchronous shared-memory baseline in the style of
// Galois: a wait-free concurrent union-find processed by `workers`
// goroutines over static edge chunks, unioning by smaller root id with
// compare-and-swap and path halving. No barriers are involved beyond the
// final join.
func SharedMemory(g *graph.Graph, workers int) *Result {
	if workers < 1 {
		workers = 1
	}
	n := g.N
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}

	find := func(x int32) int32 {
		for {
			p := atomic.LoadInt32(&parent[x])
			if p == x {
				return x
			}
			gp := atomic.LoadInt32(&parent[p])
			if gp != p {
				// Path halving; a failed CAS just means someone else
				// improved the path.
				atomic.CompareAndSwapInt32(&parent[x], p, gp)
			}
			x = p
		}
	}
	union := func(a, b int32) {
		for {
			ra, rb := find(a), find(b)
			if ra == rb {
				return
			}
			if ra > rb {
				ra, rb = rb, ra
			}
			// Attach the larger root under the smaller; retry on races.
			if atomic.CompareAndSwapInt32(&parent[rb], rb, ra) {
				return
			}
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(g.Edges) / workers
		hi := (w + 1) * len(g.Edges) / workers
		wg.Add(1)
		go func(chunk []graph.Edge) {
			defer wg.Done()
			for _, e := range chunk {
				union(e.U, e.V)
			}
		}(g.Edges[lo:hi])
	}
	wg.Wait()

	res := &Result{Labels: make([]int32, n)}
	remap := graph.GetRemap(n)
	for v := int32(0); int(v) < n; v++ {
		res.Labels[v] = remap.Of(find(v))
	}
	res.Count = remap.Len()
	graph.PutRemap(remap)
	return res
}
