package cc

import (
	"repro/internal/bsp"
	"repro/internal/graph"
)

// LabelPropagation is the distributed-memory baseline in the style of the
// Parallel BGL's connected components: a replicated label array refined by
// min-label propagation with pointer jumping, needing Θ(log n) rounds and
// an n-word all-reduce per round. Its synchronization count and
// communication volume are exactly what the paper's O(1)-superstep
// algorithm avoids. Every processor returns the same Result.
func LabelPropagation(c *bsp.Comm, n int, local []graph.Edge) *Result {
	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = uint64(i)
	}
	rounds := 0
	prop := make([]uint64, n)
	snap := make([]uint64, n)
	for {
		rounds++
		copy(prop, labels)
		// Hook: propose the smaller endpoint label across each edge.
		for _, e := range local {
			lu, lv := labels[e.U], labels[e.V]
			if lu < prop[e.V] {
				prop[e.V] = lu
			}
			if lv < prop[e.U] {
				prop[e.U] = lv
			}
		}
		c.Ops(uint64(len(local)))
		merged := c.AllReduce(prop, bsp.OpMin)
		// Synchronous pointer jumping on a snapshot (the PRAM-style step
		// PBGL's algorithm performs; replicated, hence deterministic and
		// identical on every processor).
		for j := 0; j < 2; j++ {
			copy(snap, merged)
			for v := range merged {
				merged[v] = snap[snap[v]]
			}
		}
		c.Ops(uint64(3 * n))
		changed := uint64(0)
		for v := range merged {
			if merged[v] != labels[v] {
				changed = 1
				break
			}
		}
		// Copy out of the collective's scratch: the next AllReduce (the
		// convergence check below) reuses it.
		copy(labels, merged)
		if c.AllReduce([]uint64{changed}, bsp.OpMax)[0] == 0 {
			break
		}
		if rounds > 2*n+4 {
			panic("cc: label propagation failed to converge")
		}
	}
	// Compact to dense labels (final labels are vertex ids, so they fit
	// the [0, n) scatter table).
	res := &Result{Labels: make([]int32, n), Iterations: rounds}
	remap := graph.GetRemap(n)
	for v := 0; v < n; v++ {
		res.Labels[v] = remap.Of(int32(labels[v]))
	}
	res.Count = remap.Len()
	graph.PutRemap(remap)
	return res
}
