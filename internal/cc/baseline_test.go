package cc

import (
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
)

func runLabelProp(t testing.TB, g *graph.Graph, p int) *Result {
	t.Helper()
	var res *Result
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		r := LabelPropagation(c, n, local)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLabelPropagationMatchesSequential(t *testing.T) {
	g := multiComponentGraph(3)
	want := Sequential(g)
	for _, p := range []int{1, 3, 5} {
		got := runLabelProp(t, g, p)
		if got.Count != want.Count || !samePartition(got.Labels, want.Labels) {
			t.Errorf("p=%d: label propagation disagrees (count %d vs %d)", p, got.Count, want.Count)
		}
	}
}

func TestLabelPropagationPath(t *testing.T) {
	// Long path: worst case for propagation without jumping; pointer
	// jumping must keep rounds logarithmic-ish, certainly << n.
	g := gen.Path(256, 1)
	got := runLabelProp(t, g, 2)
	if got.Count != 1 {
		t.Fatalf("path count = %d", got.Count)
	}
	if got.Iterations > 64 {
		t.Errorf("label propagation needed %d rounds on a 256-path", got.Iterations)
	}
}

func TestSharedMemoryMatchesSequential(t *testing.T) {
	g := multiComponentGraph(6)
	want := Sequential(g)
	for _, workers := range []int{1, 2, 8} {
		got := SharedMemory(g, workers)
		if got.Count != want.Count || !samePartition(got.Labels, want.Labels) {
			t.Errorf("workers=%d: shared-memory CC disagrees", workers)
		}
	}
}

func TestSharedMemoryRandom(t *testing.T) {
	err := quick.Check(func(rawSeed uint16) bool {
		g := gen.ErdosRenyiM(150, 200, uint64(rawSeed), gen.Config{})
		want := Sequential(g)
		got := SharedMemory(g, 4)
		return got.Count == want.Count && samePartition(got.Labels, want.Labels)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestSharedMemoryZeroWorkers(t *testing.T) {
	g := gen.Cycle(10, 1)
	got := SharedMemory(g, 0)
	if got.Count != 1 {
		t.Errorf("count = %d", got.Count)
	}
}

func TestAllImplementationsAgree(t *testing.T) {
	g := gen.RMAT(9, 1500, 7, gen.Config{})
	seqRes := Sequential(g)
	par := runParallel(t, g, 4, 9)
	lp := runLabelProp(t, g, 4)
	sm := SharedMemory(g, 4)
	for name, r := range map[string]*Result{"parallel": par, "labelprop": lp, "shared": sm} {
		if r.Count != seqRes.Count {
			t.Errorf("%s count = %d, want %d", name, r.Count, seqRes.Count)
		}
		if !samePartition(r.Labels, seqRes.Labels) {
			t.Errorf("%s partition differs from sequential", name)
		}
	}
}

func TestCommunicationAdvantage(t *testing.T) {
	// The headline claim of §3.2: iterated-sampling CC needs O(1)
	// synchronizations and little volume, while label propagation pays an
	// n-word all-reduce per round and the round count grows with the
	// graph's diameter. A cycle makes the contrast stark.
	g := gen.Cycle(2000, 1)
	const p = 4
	run := func(body func(c *bsp.Comm, n int, local []graph.Edge)) *bsp.Stats {
		st, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			n, local := dist.ScatterGraph(c, 0, in)
			body(c, n, local)
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	stCC := run(func(c *bsp.Comm, n int, local []graph.Edge) {
		Parallel(c, n, local, rngFor(c), Options{})
	})
	stLP := run(func(c *bsp.Comm, n int, local []graph.Edge) {
		LabelPropagation(c, n, local)
	})
	if stCC.CommVolume >= stLP.CommVolume {
		t.Errorf("no volume advantage: CC %d words vs LP %d words", stCC.CommVolume, stLP.CommVolume)
	}
	if stCC.Supersteps >= stLP.Supersteps {
		t.Errorf("no synchronization advantage: CC %d supersteps vs LP %d", stCC.Supersteps, stLP.Supersteps)
	}
}
