package cc

import (
	"fmt"

	"repro/internal/bsp"
	"repro/internal/graph"
)

// LowRound computes connected components in the style of
// Andoni–Stein–Song–Wang's log-diameter-round connectivity: each round
// hooks every live edge onto the smaller endpoint label, merges the
// proposals with one n-word AllReduce(Min), and then — the step label
// propagation rations to two pointer jumps — closes the entire pointer
// forest in a single replicated sweep, so a component's minimum label
// leaps across whole contracted regions per round instead of a constant
// distance. Edges are relabelled and loops dropped after every round;
// the algorithm terminates when no live edge remains, which takes
// O(log d) rounds on a d-diameter graph (and exactly 2 rounds on inputs
// whose vertex ids follow the topology, e.g. generated paths and grids).
//
// The trade against cc.Parallel's iterated sampling: LowRound never
// funnels edges through a root solver — per round it moves one n-word
// collective and does O(n + m/p) local work per rank, which wins when
// the root's gather+solve or label propagation's Θ(log n) rounds hurt.
// Accounting flows through the ordinary ledger: two collectives per
// round plus the counted local ops, nothing bespoke.
//
// The full closure is possible in one ascending sweep because labels
// only ever decrease: labels[v] <= v is an invariant (a vertex's label
// is the minimum id merged into its group so far), so when the sweep
// reaches v, merged[merged[v]] is already fully compressed.
//
// Every processor returns the same Result, with the same canonical
// first-occurrence dense labelling as cc.Parallel and cc.Sequential.
func LowRound(c *bsp.Comm, n int, local []graph.Edge, opts Options) *Result {
	opts.defaults()
	if pl := opts.Plan; pl.Matches(n) {
		c.SkipComm(pl.CCCost.Collectives, pl.CCCost.Words)
		return &Result{
			Labels:     append([]int32(nil), pl.Labels...),
			Count:      pl.Components,
			Iterations: 0,
		}
	}

	labels := make([]uint64, n)
	for i := range labels {
		labels[i] = uint64(i)
	}
	prop := make([]uint64, n)
	// Work on a private copy so the caller's slice survives contraction.
	edges := append([]graph.Edge(nil), local...)

	rounds := 0
	for {
		m := c.AllReduce([]uint64{uint64(len(edges))}, bsp.OpSum)[0]
		if m == 0 {
			break
		}
		if rounds >= opts.MaxIterations {
			panic(fmt.Sprintf("cc: lowround did not converge after %d rounds (m=%d)", rounds, m))
		}
		rounds++

		// Hook: propose the smaller endpoint label across each live edge.
		copy(prop, labels)
		for _, e := range edges {
			lu, lv := labels[e.U], labels[e.V]
			if lu < prop[e.V] {
				prop[e.V] = lu
			}
			if lv < prop[e.U] {
				prop[e.U] = lv
			}
		}
		c.Ops(uint64(len(edges)))
		merged := c.AllReduce(prop, bsp.OpMin)

		// Full closure in one ascending sweep (see the invariant above).
		for v := range merged {
			if r := merged[merged[v]]; r != merged[v] {
				merged[v] = r
			}
		}
		c.Ops(uint64(n))
		// Copy out of the collective's scratch before the next AllReduce.
		copy(labels, merged)

		// Contract: relabel local edges onto the new roots, drop loops.
		out := edges[:0]
		for _, e := range edges {
			u := int32(uint32(labels[e.U]))
			v := int32(uint32(labels[e.V]))
			if u != v {
				out = append(out, graph.Edge{U: u, V: v, W: e.W})
			}
		}
		c.Ops(uint64(len(edges)))
		edges = out
	}

	// Labels are replicated (every round's state is an AllReduce result),
	// so each rank compacts identically with no final broadcast.
	res := &Result{Labels: make([]int32, n), Iterations: rounds}
	remap := graph.GetRemap(n)
	for v := 0; v < n; v++ {
		res.Labels[v] = remap.Of(int32(uint32(labels[v])))
	}
	res.Count = remap.Len()
	graph.PutRemap(remap)
	return res
}
