package cc

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// runBSP executes a BSP CC kernel over p processors and returns rank 0's
// result.
func runBSP(t testing.TB, g *graph.Graph, p int, body func(c *bsp.Comm, n int, local []graph.Edge) *Result) *Result {
	t.Helper()
	var res *Result
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		r := body(c, n, local)
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func equivalenceGraphs() map[string]*graph.Graph {
	path := graph.New(400)
	for i := int32(0); i < 399; i++ {
		path.AddEdge(i, i+1, 1)
	}
	grid := graph.New(300) // 20x15 grid
	for r := int32(0); r < 20; r++ {
		for c := int32(0); c < 15; c++ {
			v := r*15 + c
			if c+1 < 15 {
				grid.AddEdge(v, v+1, 1)
			}
			if r+1 < 20 {
				grid.AddEdge(v, v+15, 1)
			}
		}
	}
	return map[string]*graph.Graph{
		"golden-blobs": multiComponentGraph(4),
		"path-400":     path,
		"grid-20x15":   grid,
		"er-300":       gen.ErdosRenyiM(300, 900, 5, gen.Config{}),
		"ws-400":       gen.WattsStrogatz(400, 6, 0.2, 9, gen.Config{}),
	}
}

// TestKernelEquivalence proves every registered CC kernel produces the
// canonical first-occurrence dense labelling — bit-identical labels, not
// merely the same partition — on the golden graphs, across p in
// {1, 4, 16} for the BSP kernels. This is what lets the query planner
// swap kernels per query without ever changing a result.
func TestKernelEquivalence(t *testing.T) {
	bspKernels := map[string]func(c *bsp.Comm, n int, local []graph.Edge) *Result{
		"sampling": func(c *bsp.Comm, n int, local []graph.Edge) *Result {
			return Parallel(c, n, local, rng.New(11, uint32(c.Rank()), 0), Options{})
		},
		"lowround": func(c *bsp.Comm, n int, local []graph.Edge) *Result {
			return LowRound(c, n, local, Options{})
		},
		"labelprop": func(c *bsp.Comm, n int, local []graph.Edge) *Result {
			return LabelPropagation(c, n, local)
		},
	}
	for gname, g := range equivalenceGraphs() {
		want := Sequential(g)
		check := func(t *testing.T, kernel string, got *Result) {
			t.Helper()
			if got.Count != want.Count {
				t.Fatalf("%s on %s: count = %d, want %d", kernel, gname, got.Count, want.Count)
			}
			for v := range want.Labels {
				if got.Labels[v] != want.Labels[v] {
					t.Fatalf("%s on %s: label[%d] = %d, want %d (not bit-identical)",
						kernel, gname, v, got.Labels[v], want.Labels[v])
				}
			}
		}
		for kname, body := range bspKernels {
			for _, p := range []int{1, 4, 16} {
				t.Run(fmt.Sprintf("%s/%s/p=%d", gname, kname, p), func(t *testing.T) {
					check(t, kname, runBSP(t, g, p, body))
				})
			}
		}
		t.Run(gname+"/shared-adaptive", func(t *testing.T) {
			check(t, "shared-adaptive", SharedAdaptive(g))
		})
		t.Run(gname+"/shared-unionfind", func(t *testing.T) {
			check(t, "shared-unionfind", SharedMemory(g, 4))
		})
	}
}

// TestLowRoundFewRounds pins the kernel's reason to exist: on a
// high-diameter path with topology-aligned ids it converges in 2 rounds
// where label propagation needs Θ(log d).
func TestLowRoundFewRounds(t *testing.T) {
	path := graph.New(4096)
	for i := int32(0); i < 4095; i++ {
		path.AddEdge(i, i+1, 1)
	}
	lr := runBSP(t, path, 4, func(c *bsp.Comm, n int, local []graph.Edge) *Result {
		return LowRound(c, n, local, Options{})
	})
	if lr.Count != 1 {
		t.Fatalf("path components = %d, want 1", lr.Count)
	}
	if lr.Iterations > 3 {
		t.Errorf("lowround took %d rounds on a path, want <= 3", lr.Iterations)
	}
	lp := runBSP(t, path, 4, func(c *bsp.Comm, n int, local []graph.Edge) *Result {
		return LabelPropagation(c, n, local)
	})
	if lp.Iterations <= lr.Iterations {
		t.Errorf("label propagation rounds (%d) should exceed lowround rounds (%d) on a path",
			lp.Iterations, lr.Iterations)
	}
}

// TestLowRoundPlanShortcut mirrors the cc.Parallel warm path: a matching
// plan returns its labels with zero cold work and the avoided cost on
// the ledger.
func TestLowRoundPlanShortcut(t *testing.T) {
	g := multiComponentGraph(4)
	pl := g.Snapshot().PlanFacts()
	pl.CCCost = graph.CollectiveCost{Collectives: 3, Words: 123}
	var res *Result
	st, err := bsp.Run(2, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		r := LowRound(c, n, local, Options{Plan: pl})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Fatalf("warm lowround iterated %d times", res.Iterations)
	}
	want := Sequential(g)
	for v := range want.Labels {
		if res.Labels[v] != want.Labels[v] {
			t.Fatalf("warm label[%d] = %d, want %d", v, res.Labels[v], want.Labels[v])
		}
	}
	if st.AvoidedCollectives == 0 || st.AvoidedCommVolume == 0 {
		t.Errorf("plan shortcut left no avoided-cost trace: %+v", st)
	}
}

func TestSharedAdaptiveEmpty(t *testing.T) {
	if res := SharedAdaptive(graph.New(0)); res.Count != 0 {
		t.Fatalf("empty graph count = %d", res.Count)
	}
	if res := SharedAdaptive(graph.New(5)); res.Count != 5 {
		t.Fatalf("edgeless count = %d", res.Count)
	}
}
