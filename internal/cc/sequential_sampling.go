package cc

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// SequentialSampling runs the iterated-sampling connected-components
// algorithm on one processor without the BSP machinery: per round, sample
// s = n^(1+ε/2) edges uniformly, solve the sample with union-find, and
// relabel the remaining edge array in one sequential pass. This is the
// code path behind the paper's claim that the sampling algorithm, run
// sequentially, is competitive with a graph traversal despite doing more
// instructions — its passes are sequential scans, where BFS does one
// random access per edge endpoint.
func SequentialSampling(g *graph.Graph, st *rng.Stream, epsilon float64) *Result {
	if epsilon <= 0 {
		epsilon = 0.5
	}
	n := g.N
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = int32(i)
	}
	edges := append([]graph.Edge(nil), g.Edges...)
	s := int(math.Ceil(math.Pow(float64(n), 1+epsilon/2)))
	iters := 0
	labels := make([]int32, n)
	seen := make([]int32, n)
	uf := graph.NewUnionFind(n)
	for len(edges) > 0 {
		iters++
		uf.Reset(n)
		if s >= len(edges) {
			for _, e := range edges {
				uf.Union(e.U, e.V)
			}
		} else {
			for k := 0; k < s; k++ {
				e := edges[st.Intn(len(edges))]
				uf.Union(e.U, e.V)
			}
		}
		// Dense relabel (seen doubles as the root→label scatter table).
		uf.LabelsInto(labels, seen)
		for v := range comp {
			comp[v] = labels[comp[v]]
		}
		out := edges[:0]
		for _, e := range edges {
			u, v := labels[e.U], labels[e.V]
			if u != v {
				out = append(out, graph.Edge{U: u, V: v, W: e.W})
			}
		}
		edges = out
	}
	// Compact final labels.
	remap := graph.GetRemap(n)
	res := &Result{Labels: make([]int32, n), Iterations: iters}
	for v := 0; v < n; v++ {
		res.Labels[v] = remap.Of(comp[v])
	}
	res.Count = remap.Len()
	graph.PutRemap(remap)
	return res
}
