package cc

import (
	"testing"
	"testing/quick"

	"repro/internal/bsp"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/rng"
)

// samePartition reports whether two labellings induce the same partition.
func samePartition(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int32]int32{}
	rev := map[int32]int32{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if y, ok := rev[b[i]]; ok && y != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// runParallel executes the parallel CC over p processors.
func runParallel(t testing.TB, g *graph.Graph, p int, seed uint64) *Result {
	t.Helper()
	var res *Result
	_, err := bsp.Run(p, func(c *bsp.Comm) {
		var in *graph.Graph
		if c.Rank() == 0 {
			in = g
		}
		n, local := dist.ScatterGraph(c, 0, in)
		st := rng.New(seed, uint32(c.Rank()), 0)
		r := Parallel(c, n, local, st, Options{})
		if c.Rank() == 0 {
			res = r
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func multiComponentGraph(seed uint64) *graph.Graph {
	// 5 random blobs of 40 vertices plus 20 isolated vertices.
	g := graph.New(220)
	s := rng.New(seed, 9, 9)
	for b := 0; b < 5; b++ {
		base := int32(b * 40)
		// Spanning path guarantees connectivity, then extra edges.
		for i := int32(0); i < 39; i++ {
			g.AddEdge(base+i, base+i+1, 1)
		}
		for k := 0; k < 60; k++ {
			u := base + int32(s.Intn(40))
			v := base + int32(s.Intn(40))
			if u != v {
				g.AddEdge(u, v, 1)
			}
		}
	}
	return g
}

func TestParallelMatchesSequential(t *testing.T) {
	g := multiComponentGraph(4)
	want := Sequential(g)
	if want.Count != 25 { // 5 blobs + 20 isolated
		t.Fatalf("sequential count = %d, want 25", want.Count)
	}
	for _, p := range []int{1, 2, 4, 7} {
		got := runParallel(t, g, p, 11)
		if got.Count != want.Count {
			t.Errorf("p=%d: count = %d, want %d", p, got.Count, want.Count)
		}
		if !samePartition(got.Labels, want.Labels) {
			t.Errorf("p=%d: partitions differ", p)
		}
	}
}

func TestParallelRandomGraphs(t *testing.T) {
	err := quick.Check(func(rawSeed uint16) bool {
		seed := uint64(rawSeed)
		g := gen.ErdosRenyiM(120, 160, seed, gen.Config{})
		want := Sequential(g)
		got := runParallel(t, g, 3, seed+1)
		return got.Count == want.Count && samePartition(got.Labels, want.Labels)
	}, &quick.Config{MaxCount: 15})
	if err != nil {
		t.Error(err)
	}
}

func TestParallelConnectedGraph(t *testing.T) {
	g := gen.WattsStrogatz(500, 8, 0.3, 3, gen.Config{})
	got := runParallel(t, g, 4, 17)
	if got.Count != 1 {
		t.Errorf("connected WS graph: count = %d", got.Count)
	}
}

func TestParallelEdgeless(t *testing.T) {
	g := graph.New(10)
	got := runParallel(t, g, 3, 1)
	if got.Count != 10 || got.Iterations != 0 {
		t.Errorf("edgeless: count=%d iters=%d", got.Count, got.Iterations)
	}
}

func TestParallelDeterministicSeed(t *testing.T) {
	g := multiComponentGraph(8)
	a := runParallel(t, g, 4, 5)
	b := runParallel(t, g, 4, 5)
	if a.Count != b.Count || a.Iterations != b.Iterations {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestParallelFewIterations(t *testing.T) {
	// O(1) iterations w.h.p. — on a 1000-vertex graph expect very few.
	g := gen.ErdosRenyiM(1000, 8000, 5, gen.Config{})
	got := runParallel(t, g, 4, 3)
	if got.Iterations > 6 {
		t.Errorf("took %d iterations, want O(1) small", got.Iterations)
	}
}

func TestParallelSuperstepsConstant(t *testing.T) {
	// Supersteps must not grow with p (§3.2: O(1) supersteps).
	g := gen.ErdosRenyiM(400, 4000, 6, gen.Config{})
	var steps [2]int
	for i, p := range []int{2, 8} {
		st, err := bsp.Run(p, func(c *bsp.Comm) {
			var in *graph.Graph
			if c.Rank() == 0 {
				in = g
			}
			n, local := dist.ScatterGraph(c, 0, in)
			stream := rng.New(21, uint32(c.Rank()), 0)
			Parallel(c, n, local, stream, Options{})
		})
		if err != nil {
			t.Fatal(err)
		}
		steps[i] = st.Supersteps
	}
	if diff := steps[1] - steps[0]; diff > 2 || diff < -2 {
		t.Errorf("supersteps vary with p: %v", steps)
	}
}

func TestSequentialLabelsDense(t *testing.T) {
	g := multiComponentGraph(2)
	res := Sequential(g)
	seen := make([]bool, res.Count)
	for _, l := range res.Labels {
		if int(l) >= res.Count || l < 0 {
			t.Fatalf("label %d outside [0,%d)", l, res.Count)
		}
		seen[l] = true
	}
	for l, ok := range seen {
		if !ok {
			t.Errorf("label %d unused", l)
		}
	}
}
