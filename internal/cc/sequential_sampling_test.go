package cc

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/rng"
)

func TestSequentialSamplingMatchesBFS(t *testing.T) {
	g := multiComponentGraph(12)
	want := Sequential(g)
	got := SequentialSampling(g, rng.New(3, 0, 0), 0.5)
	if got.Count != want.Count || !samePartition(got.Labels, want.Labels) {
		t.Errorf("sequential sampling: count %d vs %d", got.Count, want.Count)
	}
}

func TestSequentialSamplingRandom(t *testing.T) {
	err := quick.Check(func(rawSeed uint16) bool {
		g := gen.ErdosRenyiM(200, 300, uint64(rawSeed), gen.Config{})
		want := Sequential(g)
		got := SequentialSampling(g, rng.New(uint64(rawSeed)+7, 0, 0), 0.5)
		return got.Count == want.Count && samePartition(got.Labels, want.Labels)
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}

func TestSequentialSamplingEdgeless(t *testing.T) {
	g := gen.Path(1, 1)
	got := SequentialSampling(g, rng.New(1, 0, 0), 0.5)
	if got.Count != 1 || got.Iterations != 0 {
		t.Errorf("%+v", got)
	}
}

func TestSequentialSamplingFewIterations(t *testing.T) {
	g := gen.ErdosRenyiM(2000, 16000, 3, gen.Config{})
	got := SequentialSampling(g, rng.New(5, 0, 0), 0.5)
	if got.Iterations > 5 {
		t.Errorf("%d iterations, want O(1) small", got.Iterations)
	}
}

func TestSequentialSamplingDefaultEpsilon(t *testing.T) {
	g := gen.Cycle(100, 1)
	got := SequentialSampling(g, rng.New(2, 0, 0), 0)
	if got.Count != 1 {
		t.Errorf("count = %d", got.Count)
	}
}
