// Package cc implements the communication-avoiding connected-components
// algorithm of §3.2 — iterated sampling without bulk edge contraction,
// taking O(1) supersteps and O(n^{1+ε}) communication volume w.h.p. — and
// the three baseline families the paper compares against: a sequential
// linear-time traversal (the BGL baseline), a synchronization-heavy BSP
// label-propagation algorithm (the PBGL baseline), and an asynchronous
// shared-memory union-find (the Galois baseline).
package cc

import (
	"fmt"
	"math"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparsify"
)

// Result is a connected-components labelling.
type Result struct {
	// Labels maps every original vertex to its component label. Labels
	// are dense in [0, Count).
	Labels []int32
	// Count is the number of connected components.
	Count int
	// Iterations is the number of sparsify→contract rounds performed
	// (w.h.p. O(1)).
	Iterations int
}

// Options tunes the parallel algorithm. Zero values select the defaults.
type Options struct {
	// Epsilon controls the sample size s = n^(1+Epsilon/2); default 0.5.
	Epsilon float64
	// Delta is the Chernoff oversampling slack of the unweighted
	// sampler; default 0.5.
	Delta float64
	// MaxIterations bounds the sampling rounds (default 64); exceeding it
	// indicates a logic error and panics the worker.
	MaxIterations int
	// Plan, when non-nil and matching the input, supplies the snapshot's
	// precomputed connectivity labelling: the call returns it immediately
	// with zero supersteps, recording the skipped cold cost on the BSP
	// ledger via SkipComm. Plan labels are canonical first-occurrence
	// dense, so the warm Result is bit-identical to a cold run's. A
	// mismatched plan (wrong N) is ignored.
	Plan *graph.Plan
}

func (o *Options) defaults() {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.5
	}
	if o.Delta <= 0 {
		o.Delta = 0.5
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 64
	}
}

// Parallel computes connected components of the distributed edge array
// (n vertices, each processor holding a slice of edges) by iterated
// sampling: sparsify, solve the sample at the root, broadcast the
// relabelling, contract locally, repeat until no edge remains. Every
// processor returns the same Result.
func Parallel(c *bsp.Comm, n int, local []graph.Edge, st *rng.Stream, opts Options) *Result {
	opts.defaults()
	if pl := opts.Plan; pl.Matches(n) {
		c.SkipComm(pl.CCCost.Collectives, pl.CCCost.Words)
		return &Result{
			Labels:     append([]int32(nil), pl.Labels...),
			Count:      pl.Components,
			Iterations: 0,
		}
	}
	const root = 0

	// The root tracks the label of each original vertex. Its per-round
	// solver state (union-find, labelling, broadcast payload) is hoisted
	// out of the loop and recycled via Reset/LabelsInto.
	var comp, labels, lscratch []int32
	var uf *graph.UnionFind
	var g []uint64
	if c.Rank() == root {
		comp = make([]int32, n)
		for i := range comp {
			comp[i] = int32(i)
		}
		labels = make([]int32, n)
		lscratch = make([]int32, n)
		uf = graph.NewUnionFind(n)
		g = make([]uint64, n)
	}
	s := sampleSize(n, opts.Epsilon)
	// Work on a private copy so the caller's slice survives.
	edges := append([]graph.Edge(nil), local...)

	iters := 0
	prevM := uint64(math.MaxUint64)
	for {
		m := c.AllReduce([]uint64{uint64(len(edges))}, bsp.OpSum)[0]
		if m == 0 {
			break
		}
		if iters >= opts.MaxIterations {
			panic(fmt.Sprintf("cc: no convergence after %d iterations (m=%d)", iters, m))
		}
		if m == prevM {
			// Safety net: the sample failed to shrink the edge set (only
			// possible with tiny samples); double s to force progress.
			s *= 2
		}
		prevM = m
		iters++

		sample := sparsify.Unweighted(c, root, edges, s, n, opts.Delta, st)

		// Root: solve the sampled graph over the current label space and
		// produce the mapping g from old to new labels.
		if c.Rank() == root {
			uf.Reset(n)
			for _, e := range sample {
				uf.Union(e.U, e.V)
			}
			uf.LabelsInto(labels, lscratch)
			c.Ops(uint64(len(sample)) + uint64(n))
			for i, l := range labels {
				g[i] = uint64(uint32(l))
			}
			for v := range comp {
				comp[v] = labels[comp[v]]
			}
		}
		gw := c.Broadcast(root, g)

		// Everyone: relabel local edges and drop loops.
		out := edges[:0]
		for _, e := range edges {
			u := int32(uint32(gw[e.U]))
			v := int32(uint32(gw[e.V]))
			if u != v {
				out = append(out, graph.Edge{U: u, V: v, W: e.W})
			}
		}
		c.Ops(uint64(len(edges)))
		edges = out
	}

	// Publish the final labelling. The per-round relabellings keep comp
	// dense over the final label space already, but singleton components
	// of untouched vertices share that space; recompact for a dense
	// [0, Count) labelling.
	var words []uint64
	if c.Rank() == root {
		remap := graph.GetRemap(n)
		for v := range comp {
			comp[v] = remap.Of(comp[v])
		}
		words = make([]uint64, n+1)
		words[0] = uint64(remap.Len())
		graph.PutRemap(remap)
		for v, l := range comp {
			words[v+1] = uint64(uint32(l))
		}
	}
	words = c.Broadcast(root, words)
	res := &Result{
		Labels:     make([]int32, n),
		Count:      int(words[0]),
		Iterations: iters,
	}
	for v := 0; v < n; v++ {
		res.Labels[v] = int32(uint32(words[v+1]))
	}
	return res
}

// sampleSize returns s = ⌈n^(1+ε/2)⌉, clamped to at least 32.
func sampleSize(n int, epsilon float64) int {
	s := int(math.Ceil(math.Pow(float64(n), 1+epsilon/2)))
	if s < 32 {
		s = 32
	}
	return s
}

// Sequential computes connected components with a linear-time BFS over a
// CSR adjacency — the sequential baseline corresponding to BGL's
// connected_components.
func Sequential(g *graph.Graph) *Result {
	labels, count := graph.BuildCSR(g).ConnectedComponents()
	return &Result{Labels: labels, Count: count, Iterations: 0}
}
