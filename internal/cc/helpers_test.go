package cc

import (
	"repro/internal/bsp"
	"repro/internal/rng"
)

// rngFor derives a per-worker stream for tests.
func rngFor(c *bsp.Comm) *rng.Stream {
	return rng.New(12345, uint32(c.Rank()), 0)
}
