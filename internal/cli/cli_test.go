package cli

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
)

func TestGenerateAllTypes(t *testing.T) {
	cases := []struct {
		spec   string
		n      int
		checkM int // -1 = skip
	}{
		{"er:n=100,d=10", 100, 500},
		{"ws:n=100,d=10", 100, 500},
		{"ws:n=100,d=9", 100, 500}, // odd degree rounds up
		{"ba:n=100,d=10", 100, -1},
		{"rmat:n=100,d=10", 128, -1}, // rounds n to a power of two
		{"cycle:n=50", 50, 50},
		{"twocliques:n=20,k=3", 20, -1},
		{"grid:rows=4,cols=5", 20, 31},
	}
	for _, c := range cases {
		g, name, err := Generate(c.spec)
		if err != nil {
			t.Errorf("%s: %v", c.spec, err)
			continue
		}
		if g.N != c.n {
			t.Errorf("%s: n = %d, want %d", c.spec, g.N, c.n)
		}
		if c.checkM >= 0 && g.M() != c.checkM {
			t.Errorf("%s: m = %d, want %d", c.spec, g.M(), c.checkM)
		}
		if name == "" {
			t.Errorf("%s: empty name", c.spec)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", c.spec, err)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	for _, spec := range []string{
		"nope:n=10",
		"er:n",
		"er:n=abc",
		"ws:beta=x",
	} {
		if _, _, err := Generate(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestGenerateWeights(t *testing.T) {
	g, _, err := Generate("er:n=50,d=8,w=5")
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for _, e := range g.Edges {
		if e.W < 1 || e.W > 5 {
			t.Fatalf("weight %d out of range", e.W)
		}
		if e.W > 1 {
			varied = true
		}
	}
	if !varied {
		t.Error("w=5 produced only unit weights")
	}
}

func TestLoadGraphFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g, _, err := Generate("cycle:n=10")
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteEdgeList(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, name, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != path || back.N != 10 || back.M() != 10 {
		t.Errorf("loaded %s: n=%d m=%d", name, back.N, back.M())
	}
}

func TestLoadGraphGenSpec(t *testing.T) {
	g, name, err := LoadGraph("gen:cycle:n=7")
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 7 || name != "cycle_7" {
		t.Errorf("gen spec: n=%d name=%s", g.N, name)
	}
}

func TestLoadGraphMissingFile(t *testing.T) {
	if _, _, err := LoadGraph("/nonexistent/file.txt"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadGraphSNAP(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.snap")
	if err := os.WriteFile(path, []byte("# snap\n0 1\n1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g, _, err := LoadGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || g.M() != 2 {
		t.Errorf("snap suffix load: n=%d m=%d", g.N, g.M())
	}
	// Explicit prefix on an arbitrary extension.
	path2 := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path2, []byte("5 6\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	g2, _, err := LoadGraph("snap:" + path2)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N != 7 || g2.M() != 1 {
		t.Errorf("snap prefix load: n=%d m=%d", g2.N, g2.M())
	}
}
