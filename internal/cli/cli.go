// Package cli provides the plumbing shared by the command-line tools:
// loading a graph from a file or generating one from a compact spec, and
// emitting artifact-style result rows.
package cli

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/gen"
	"repro/internal/graph"
)

// LoadGraph reads a graph from path, or generates one if the path has the
// form "gen:TYPE:n=...,d=...,seed=...,w=...". Paths with a "snap:" prefix
// or a ".snap" suffix are parsed in the SNAP text format (no header,
// vertex count inferred). Supported generator TYPEs:
// er (Erdős–Rényi, n and d), ws (Watts–Strogatz, n, d, beta=0.3),
// ba (Barabási–Albert, n, d), rmat (R-MAT, n rounded to a power of two,
// d), cycle (n), twocliques (n, k bridges), grid (rows, cols).
func LoadGraph(path string) (*graph.Graph, string, error) {
	if spec, ok := strings.CutPrefix(path, "gen:"); ok {
		g, name, err := Generate(spec)
		return g, name, err
	}
	snap := false
	if rest, ok := strings.CutPrefix(path, "snap:"); ok {
		path, snap = rest, true
	} else if strings.HasSuffix(path, ".snap") {
		snap = true
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var g *graph.Graph
	if snap {
		g, err = graph.ReadSNAP(f)
	} else {
		g, err = graph.ReadEdgeList(f)
	}
	return g, path, err
}

// Generate builds a graph from "TYPE:k=v,k=v" (see LoadGraph).
func Generate(spec string) (*graph.Graph, string, error) {
	typ, rest, _ := strings.Cut(spec, ":")
	params := map[string]int{
		"n": 1000, "d": 16, "seed": 1, "w": 1, "k": 2, "rows": 32, "cols": 32,
	}
	beta := 0.3
	if rest != "" {
		for _, kv := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, "", fmt.Errorf("cli: bad parameter %q", kv)
			}
			if k == "beta" {
				b, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return nil, "", fmt.Errorf("cli: bad beta %q", v)
				}
				beta = b
				continue
			}
			x, err := strconv.Atoi(v)
			if err != nil {
				return nil, "", fmt.Errorf("cli: bad value %q for %q", v, k)
			}
			params[k] = x
		}
	}
	n, d, seed := params["n"], params["d"], uint64(params["seed"])
	cfg := gen.Config{MaxWeight: uint64(params["w"])}
	name := fmt.Sprintf("%s_%d_%d", typ, n, d)
	switch typ {
	case "er":
		return gen.ErdosRenyiM(n, n*d/2, seed, cfg), name, nil
	case "ws":
		k := d
		if k%2 == 1 {
			k++
		}
		return gen.WattsStrogatz(n, k, beta, seed, cfg), name, nil
	case "ba":
		return gen.BarabasiAlbert(n, (d+1)/2, seed, cfg), name, nil
	case "rmat":
		scale := 0
		for 1<<scale < n {
			scale++
		}
		return gen.RMAT(scale, (1<<scale)*d/2, seed, cfg), fmt.Sprintf("rmat_%d_%d", 1<<scale, d), nil
	case "cycle":
		return gen.Cycle(n, uint64(params["w"])), fmt.Sprintf("cycle_%d", n), nil
	case "twocliques":
		return gen.TwoCliques(n/2, params["k"], 2, 1), fmt.Sprintf("twocliques_%d_%d", n, params["k"]), nil
	case "grid":
		return gen.Grid(params["rows"], params["cols"], uint64(params["w"])), fmt.Sprintf("grid_%dx%d", params["rows"], params["cols"]), nil
	default:
		return nil, "", fmt.Errorf("cli: unknown generator %q", typ)
	}
}
