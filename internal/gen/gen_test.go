package gen

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func TestErdosRenyiMShape(t *testing.T) {
	g := ErdosRenyiM(100, 400, 1, Config{})
	if g.N != 100 || g.M() != 400 {
		t.Fatalf("shape (%d,%d), want (100,400)", g.N, g.M())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Distinct edges.
	if s := g.Simplify(); s.M() != 400 {
		t.Errorf("duplicate edges generated: %d distinct", s.M())
	}
}

func TestErdosRenyiMDeterministic(t *testing.T) {
	a := ErdosRenyiM(50, 100, 7, Config{MaxWeight: 10})
	b := ErdosRenyiM(50, 100, 7, Config{MaxWeight: 10})
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
	c := ErdosRenyiM(50, 100, 8, Config{MaxWeight: 10})
	same := true
	for i := range a.Edges {
		if a.Edges[i] != c.Edges[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestErdosRenyiMPanicsOverfull(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for m > C(n,2)")
		}
	}()
	ErdosRenyiM(4, 7, 1, Config{})
}

func TestErdosRenyiPEdgeCount(t *testing.T) {
	n, p := 300, 0.05
	g := ErdosRenyiP(n, p, 3, Config{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	expect := p * float64(n) * float64(n-1) / 2
	if math.Abs(float64(g.M())-expect) > 5*math.Sqrt(expect) {
		t.Errorf("G(n,p) produced %d edges, expected ~%.0f", g.M(), expect)
	}
	if s := g.Simplify(); s.M() != g.M() {
		t.Error("G(n,p) produced duplicates")
	}
}

func TestErdosRenyiPExtremes(t *testing.T) {
	if g := ErdosRenyiP(10, 0, 1, Config{}); g.M() != 0 {
		t.Error("p=0 produced edges")
	}
	if g := ErdosRenyiP(5, 1, 1, Config{}); g.M() != 10 {
		t.Errorf("p=1 produced %d edges, want 10", g.M())
	}
}

func TestDecodePairCoversAll(t *testing.T) {
	n := 7
	seen := map[[2]int32]bool{}
	total := int64(n * (n - 1) / 2)
	for i := int64(0); i < total; i++ {
		u, v := decodePair(i, n)
		if u < 0 || v <= u || int(v) >= n {
			t.Fatalf("decodePair(%d) = (%d,%d) invalid", i, u, v)
		}
		seen[[2]int32{u, v}] = true
	}
	if int64(len(seen)) != total {
		t.Errorf("decodePair covered %d pairs, want %d", len(seen), total)
	}
}

func TestWattsStrogatz(t *testing.T) {
	n, k := 200, 8
	g := WattsStrogatz(n, k, 0.3, 5, Config{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() != n*k/2 {
		t.Errorf("WS edge count = %d, want %d", g.M(), n*k/2)
	}
	if !g.IsConnected() {
		t.Error("WS graph disconnected (possible but vanishingly unlikely at d=8)")
	}
}

func TestWattsStrogatzPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd k accepted")
		}
	}()
	WattsStrogatz(10, 3, 0.3, 1, Config{})
}

func TestBarabasiAlbert(t *testing.T) {
	n, k := 300, 4
	g := BarabasiAlbert(n, k, 9, Config{})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	wantM := k*(k+1)/2 + (n-k-1)*k
	if g.M() != wantM {
		t.Errorf("BA edge count = %d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Error("BA graph must be connected by construction")
	}
	// Scale-free signature: max degree far above average.
	degs := graph.BuildCSR(g)
	maxDeg := 0
	for v := int32(0); int(v) < n; v++ {
		if d := degs.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if maxDeg < 4*k {
		t.Errorf("max degree %d suspiciously low for preferential attachment", maxDeg)
	}
}

func TestRMAT(t *testing.T) {
	g := RMAT(10, 4000, 11, Config{})
	if g.N != 1024 {
		t.Fatalf("RMAT n = %d, want 1024", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.M() < 3500 {
		t.Errorf("RMAT produced only %d edges of 4000 requested", g.M())
	}
	// Skew signature: a noticeable fraction of edges in the low-id quadrant.
	low := 0
	for _, e := range g.Edges {
		if e.U < 512 && e.V < 512 {
			low++
		}
	}
	if float64(low)/float64(g.M()) < 0.3 {
		t.Errorf("RMAT lacks expected skew: %d/%d edges in low quadrant", low, g.M())
	}
}

func TestWeightsInRange(t *testing.T) {
	g := ErdosRenyiM(50, 200, 2, Config{MaxWeight: 5})
	for _, e := range g.Edges {
		if e.W < 1 || e.W > 5 {
			t.Fatalf("weight %d out of [1,5]", e.W)
		}
	}
}
