// Package gen generates the synthetic input families used by the paper's
// evaluation (§5): Erdős–Rényi G(n,M), Watts–Strogatz small-world graphs
// (rewiring probability 0.3), Barabási–Albert scale-free graphs, and
// R-MAT graphs (a=0.45, b=c=0.22), plus a set of corner-case graphs with
// known, deterministic minimum-cut values used for verification (artifact
// §A.6.2).
package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Config controls weight assignment for the random generators.
type Config struct {
	// MaxWeight > 1 assigns each edge a uniform weight in [1, MaxWeight];
	// otherwise all edges have weight 1.
	MaxWeight uint64
}

func (c Config) weight(s *rng.Stream) uint64 {
	if c.MaxWeight > 1 {
		return 1 + s.Uint64n(c.MaxWeight)
	}
	return 1
}

// ErdosRenyiM returns a G(n, M) graph: exactly m distinct edges drawn
// uniformly among all vertex pairs (the model of Figure 1 and Figure 9).
func ErdosRenyiM(n, m int, seed uint64, cfg Config) *graph.Graph {
	maxEdges := int64(n) * int64(n-1) / 2
	if int64(m) > maxEdges {
		panic(fmt.Sprintf("gen: G(n,M) with m=%d > C(%d,2)=%d", m, n, maxEdges))
	}
	s := rng.New(seed, 0, 1)
	g := graph.New(n)
	seen := make(map[uint64]bool, m)
	for len(g.Edges) < m {
		u := int32(s.Intn(n))
		v := int32(s.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddEdge(u, v, cfg.weight(s))
	}
	return g
}

// ErdosRenyiP returns a G(n, p) graph using geometric skip sampling, which
// runs in O(n + m) expected time rather than O(n^2).
func ErdosRenyiP(n int, p float64, seed uint64, cfg Config) *graph.Graph {
	g := graph.New(n)
	if p <= 0 || n < 2 {
		return g
	}
	if p >= 1 {
		return Complete(n, 1)
	}
	s := rng.New(seed, 0, 2)
	// Enumerate pairs (u,v), u<v, in a flat order and jump geometrically.
	total := int64(n) * int64(n-1) / 2
	idx := int64(s.Geometric(p))
	for idx < total {
		// Decode idx into (u, v).
		u, rem := decodePair(idx, n)
		g.AddEdge(u, rem, cfg.weight(s))
		idx += 1 + int64(s.Geometric(p))
	}
	return g
}

// decodePair maps a flat index in [0, C(n,2)) to the pair (u,v), u<v,
// enumerated row by row.
func decodePair(idx int64, n int) (int32, int32) {
	u := int64(0)
	rowLen := int64(n - 1)
	for idx >= rowLen {
		idx -= rowLen
		u++
		rowLen--
	}
	return int32(u), int32(u + 1 + idx)
}

// WattsStrogatz returns a small-world graph: a ring lattice where each
// vertex connects to its k/2 nearest neighbors on each side, with every
// edge rewired with probability beta (the paper uses beta = 0.3). k must
// be even and < n.
func WattsStrogatz(n, k int, beta float64, seed uint64, cfg Config) *graph.Graph {
	if k%2 != 0 || k >= n {
		panic(fmt.Sprintf("gen: WattsStrogatz needs even k < n, got k=%d n=%d", k, n))
	}
	s := rng.New(seed, 0, 3)
	type pair struct{ u, v int32 }
	present := make(map[pair]bool, n*k/2)
	norm := func(u, v int32) pair {
		if u > v {
			u, v = v, u
		}
		return pair{u, v}
	}
	// Ring lattice.
	edges := make([]pair, 0, n*k/2)
	for i := 0; i < n; i++ {
		for j := 1; j <= k/2; j++ {
			p := norm(int32(i), int32((i+j)%n))
			edges = append(edges, p)
			present[p] = true
		}
	}
	// Rewiring: replace (u,v) by (u,w) for uniform w avoiding loops and
	// duplicates.
	for i, e := range edges {
		if !s.Bernoulli(beta) {
			continue
		}
		for attempt := 0; attempt < 32; attempt++ {
			w := int32(s.Intn(n))
			if w == e.u || w == e.v {
				continue
			}
			np := norm(e.u, w)
			if present[np] {
				continue
			}
			delete(present, e)
			present[np] = true
			edges[i] = np
			break
		}
	}
	g := graph.New(n)
	for _, e := range edges {
		g.AddEdge(e.u, e.v, cfg.weight(s))
	}
	return g
}

// BarabasiAlbert returns a scale-free graph grown by preferential
// attachment: each new vertex attaches to k existing vertices chosen with
// probability proportional to their degree.
func BarabasiAlbert(n, k int, seed uint64, cfg Config) *graph.Graph {
	if k < 1 || k >= n {
		panic(fmt.Sprintf("gen: BarabasiAlbert needs 1 <= k < n, got k=%d n=%d", k, n))
	}
	s := rng.New(seed, 0, 4)
	g := graph.New(n)
	// Repeated-endpoint trick: choosing a uniform element of the target
	// list samples proportionally to degree.
	targets := make([]int32, 0, 2*n*k)
	// Seed clique on the first k+1 vertices.
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			g.AddEdge(int32(i), int32(j), cfg.weight(s))
			targets = append(targets, int32(i), int32(j))
		}
	}
	chosen := make(map[int32]bool, k)
	for v := k + 1; v < n; v++ {
		clear(chosen)
		for len(chosen) < k {
			t := targets[s.Intn(len(targets))]
			if !chosen[t] {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.AddEdge(int32(v), t, cfg.weight(s))
			targets = append(targets, int32(v), t)
		}
	}
	return g
}

// RMAT returns an R-MAT graph with the paper's parameters a=0.45,
// b=c=0.22 (d=0.11) and m distinct edges over n = 2^scale vertices.
func RMAT(scale, m int, seed uint64, cfg Config) *graph.Graph {
	const a, b, c = 0.45, 0.22, 0.22
	n := 1 << scale
	s := rng.New(seed, 0, 5)
	g := graph.New(n)
	seen := make(map[uint64]bool, m)
	maxTries := 64 * m
	for len(g.Edges) < m && maxTries > 0 {
		maxTries--
		var u, v int32
		for level := 0; level < scale; level++ {
			r := s.Float64()
			switch {
			case r < a: // top-left
			case r < a+b: // top-right
				v |= 1 << level
			case r < a+b+c: // bottom-left
				u |= 1 << level
			default: // bottom-right
				u |= 1 << level
				v |= 1 << level
			}
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := uint64(u)<<32 | uint64(uint32(v))
		if seen[key] {
			continue
		}
		seen[key] = true
		g.AddEdge(u, v, cfg.weight(s))
	}
	return g
}
