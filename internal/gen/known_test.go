package gen

import "testing"

func TestCycle(t *testing.T) {
	g := Cycle(6, 3)
	if g.M() != 6 {
		t.Fatalf("cycle edge count = %d", g.M())
	}
	if !g.IsConnected() {
		t.Error("cycle disconnected")
	}
	// Any contiguous arc is a cut of value 2w.
	side := []bool{true, true, true, false, false, false}
	if got := g.CutValue(side); got != 6 {
		t.Errorf("arc cut = %d, want 6", got)
	}
}

func TestPathAndStar(t *testing.T) {
	p := Path(5, 2)
	if p.M() != 4 || !p.IsConnected() {
		t.Errorf("path malformed: m=%d", p.M())
	}
	s := Star(5, 2)
	if s.M() != 4 || !s.IsConnected() {
		t.Errorf("star malformed: m=%d", s.M())
	}
	if d := s.DegreeCut(1); d != 2 {
		t.Errorf("star leaf cut = %d, want 2", d)
	}
}

func TestComplete(t *testing.T) {
	g := Complete(6, 2)
	if g.M() != 15 {
		t.Fatalf("K6 edge count = %d, want 15", g.M())
	}
	if d := g.DegreeCut(0); d != 10 {
		t.Errorf("K6 singleton cut = %d, want 10", d)
	}
}

func TestTwoCliques(t *testing.T) {
	g := TwoCliques(8, 3, 5, 1)
	if g.N != 16 {
		t.Fatalf("n = %d", g.N)
	}
	side := make([]bool, 16)
	for i := 0; i < 8; i++ {
		side[i] = true
	}
	if got := g.CutValue(side); got != 3 {
		t.Errorf("clique-separating cut = %d, want 3", got)
	}
	if !g.IsConnected() {
		t.Error("TwoCliques disconnected")
	}
}

func TestTwoCliquesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k > half accepted")
		}
	}()
	TwoCliques(2, 3, 1, 1)
}

func TestGrid(t *testing.T) {
	g := Grid(3, 4, 2)
	if g.N != 12 {
		t.Fatalf("grid n = %d", g.N)
	}
	// 3*3 horizontal + 2*4 vertical = 17 edges.
	if g.M() != 17 {
		t.Errorf("grid m = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Error("grid disconnected")
	}
	if MinCutOfGrid(3, 4, 2) != 4 {
		t.Errorf("MinCutOfGrid(3,4,2) = %d, want 4 (corner)", MinCutOfGrid(3, 4, 2))
	}
	if MinCutOfGrid(1, 5, 3) != 3 {
		t.Error("1-row grid should have path cut w")
	}
	if MinCutOfGrid(1, 1, 3) != 0 {
		t.Error("degenerate grid cut must be 0")
	}
}

func TestDumbbell(t *testing.T) {
	g := Dumbbell(5, 4, 1)
	if g.N != 10 || g.M() != 11 {
		t.Fatalf("dumbbell shape (%d,%d)", g.N, g.M())
	}
	side := make([]bool, 10)
	for i := 0; i < 5; i++ {
		side[i] = true
	}
	if got := g.CutValue(side); got != 1 {
		t.Errorf("bridge cut = %d, want 1", got)
	}
}
