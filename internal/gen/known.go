package gen

import (
	"fmt"

	"repro/internal/graph"
)

// The generators below produce corner cases with known, deterministic
// minimum-cut values, mirroring the artifact's verification_graphs.sh.

// Cycle returns the n-cycle with uniform edge weight w. Its minimum cut
// is 2w (any two edges of the ring).
func Cycle(n int, w uint64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), int32((i+1)%n), w)
	}
	return g
}

// Path returns the n-path with uniform weight w; its minimum cut is w.
func Path(n int, w uint64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(int32(i), int32(i+1), w)
	}
	return g
}

// Star returns a star on n vertices (center 0) with uniform weight w;
// its minimum cut is w (any single leaf).
func Star(n int, w uint64) *graph.Graph {
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(0, int32(i), w)
	}
	return g
}

// Complete returns K_n with uniform weight w; its minimum cut is
// (n-1)·w (any singleton).
func Complete(n int, w uint64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(int32(i), int32(j), w)
		}
	}
	return g
}

// TwoCliques returns two K_half cliques of intra-clique weight heavy
// joined by k bridge edges of weight light each. For
// light*k < (half-1)*heavy the unique minimum cut separates the cliques
// with value k*light — the canonical clustering workload.
func TwoCliques(half, k int, heavy, light uint64) *graph.Graph {
	if k > half {
		panic(fmt.Sprintf("gen: TwoCliques needs k <= half, got k=%d half=%d", k, half))
	}
	g := graph.New(2 * half)
	for i := 0; i < half; i++ {
		for j := i + 1; j < half; j++ {
			g.AddEdge(int32(i), int32(j), heavy)
			g.AddEdge(int32(half+i), int32(half+j), heavy)
		}
	}
	for b := 0; b < k; b++ {
		g.AddEdge(int32(b), int32(half+b), light)
	}
	return g
}

// Grid returns the rows×cols 4-neighbor grid with uniform weight w. Its
// minimum cut is w·min(rows, cols) for rows, cols >= 2... but for
// simplicity callers should use MinCutOfGrid, which accounts for the
// corner cut: the minimum cut of a grid with unit weights is
// min(rows, cols, 2)·w, since cutting off a corner vertex costs 2w.
func Grid(rows, cols int, w uint64) *graph.Graph {
	g := graph.New(rows * cols)
	id := func(r, c int) int32 { return int32(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.AddEdge(id(r, c), id(r, c+1), w)
			}
			if r+1 < rows {
				g.AddEdge(id(r, c), id(r+1, c), w)
			}
		}
	}
	return g
}

// MinCutOfGrid returns the exact minimum cut value of Grid(rows, cols, w).
func MinCutOfGrid(rows, cols int, w uint64) uint64 {
	if rows == 1 && cols == 1 {
		return 0
	}
	if rows == 1 || cols == 1 {
		return w // path
	}
	m := rows
	if cols < m {
		m = cols
	}
	if m > 2 {
		m = 2 // corner cut costs 2w, cheaper than slicing a whole row/col
	}
	return uint64(m) * w
}

// Dumbbell returns two cycles of given size joined by a single edge of
// weight bridgeW; its minimum cut is min(bridgeW, 2·ringW).
func Dumbbell(size int, ringW, bridgeW uint64) *graph.Graph {
	g := graph.New(2 * size)
	for i := 0; i < size; i++ {
		g.AddEdge(int32(i), int32((i+1)%size), ringW)
		g.AddEdge(int32(size+i), int32(size+(i+1)%size), ringW)
	}
	g.AddEdge(0, int32(size), bridgeW)
	return g
}
