package graph

// Matrix is a dense weighted adjacency matrix in row-major order, the
// representation used when m >= n^2/log n and inside the Recursive Step,
// where contracted graphs become arbitrarily dense (§4.3). The diagonal is
// kept at zero (no loops).
type Matrix struct {
	N int
	W []uint64 // len N*N, W[i*N+j] = weight of edge (i, j)
}

// NewMatrix returns an n-vertex matrix with no edges.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, W: make([]uint64, n*n)}
}

// MatrixFromGraph accumulates the edge array into a dense matrix,
// combining parallel edges along the way.
func MatrixFromGraph(g *Graph) *Matrix {
	m := NewMatrix(g.N)
	for _, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		m.W[int(e.U)*m.N+int(e.V)] += e.W
		m.W[int(e.V)*m.N+int(e.U)] += e.W
	}
	return m
}

// At returns the weight between i and j (0 if absent).
func (m *Matrix) At(i, j int32) uint64 { return m.W[int(i)*m.N+int(j)] }

// Set assigns the weight between i and j symmetrically.
func (m *Matrix) Set(i, j int32, w uint64) {
	m.W[int(i)*m.N+int(j)] = w
	m.W[int(j)*m.N+int(i)] = w
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	w := make([]uint64, len(m.W))
	copy(w, m.W)
	return &Matrix{N: m.N, W: w}
}

// ToGraph converts back to an edge array (upper triangle only).
func (m *Matrix) ToGraph() *Graph {
	g := New(m.N)
	for i := 0; i < m.N; i++ {
		row := m.W[i*m.N : (i+1)*m.N]
		for j := i + 1; j < m.N; j++ {
			if row[j] > 0 {
				g.Edges = append(g.Edges, Edge{U: int32(i), V: int32(j), W: row[j]})
			}
		}
	}
	return g
}

// TotalWeight returns the sum of edge weights (each undirected edge once).
func (m *Matrix) TotalWeight() uint64 {
	var t uint64
	for i := 0; i < m.N; i++ {
		row := m.W[i*m.N : (i+1)*m.N]
		for j := i + 1; j < m.N; j++ {
			t += row[j]
		}
	}
	return t
}

// WeightedDegree returns the total weight incident to vertex i.
func (m *Matrix) WeightedDegree(i int32) uint64 {
	var d uint64
	for _, w := range m.W[int(i)*m.N : (int(i)+1)*m.N] {
		d += w
	}
	return d
}

// Contract merges the vertices of m according to mapping (vertex v of the
// result is the fusion of all i with mapping[i] == v) and returns the
// contracted matrix on newN vertices. Row/column summation mirrors the
// dense bulk edge contraction of §4.1: columns are combined, the matrix is
// transposed, columns are combined again, and the diagonal is zeroed.
func (m *Matrix) Contract(mapping []int32, newN int) *Matrix {
	out := NewMatrix(newN)
	for i := 0; i < m.N; i++ {
		ti := int(mapping[i])
		row := m.W[i*m.N : (i+1)*m.N]
		outRow := out.W[ti*newN : (ti+1)*newN]
		for j, w := range row {
			if w != 0 {
				outRow[mapping[j]] += w
			}
		}
	}
	for v := 0; v < newN; v++ {
		out.W[v*newN+v] = 0
	}
	return out
}

// CutOfTwo returns the weight between the two remaining vertices; it is
// only meaningful when N == 2 (the base of recursive contraction).
func (m *Matrix) CutOfTwo() uint64 { return m.W[1] }
