// Package graph provides the weighted undirected graph model of the paper
// (§2.3): vertices 0..n-1, an edge multiset with positive integer weights,
// and the fundamental operations the algorithms build on — loop removal,
// parallel-edge combination, relabelling/contraction (§2.4), exact
// connectivity, and cut evaluation. It also defines the compact
// representations used by the distributed algorithms: plain edge arrays,
// CSR adjacency for traversals, and dense adjacency matrices for the
// recursive contraction step.
package graph

import (
	"fmt"

	xsort "repro/internal/sort"
)

// Edge is one weighted undirected edge. The endpoint order carries no
// meaning; Normalize establishes U <= V.
type Edge struct {
	U, V int32
	W    uint64
}

// Normalize returns the edge with its endpoints ordered so that U <= V.
func (e Edge) Normalize() Edge {
	if e.U > e.V {
		e.U, e.V = e.V, e.U
	}
	return e
}

// IsLoop reports whether both endpoints coincide.
func (e Edge) IsLoop() bool { return e.U == e.V }

// Graph is a weighted undirected multigraph in edge-array form, the
// representation the distributed algorithms slice across processors.
type Graph struct {
	N     int    // number of vertices; ids are 0..N-1
	Edges []Edge // may contain parallel edges but no loops
}

// New returns an empty graph on n vertices.
func New(n int) *Graph { return &Graph{N: n} }

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	e := make([]Edge, len(g.Edges))
	copy(e, g.Edges)
	return &Graph{N: g.N, Edges: e}
}

// AddEdge appends an undirected edge of weight w. Loops are ignored.
// It panics on out-of-range endpoints or zero weight.
func (g *Graph) AddEdge(u, v int32, w uint64) {
	if u < 0 || v < 0 || int(u) >= g.N || int(v) >= g.N {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", u, v, g.N))
	}
	if w == 0 {
		panic("graph: zero-weight edge")
	}
	if u == v {
		return
	}
	g.Edges = append(g.Edges, Edge{U: u, V: v, W: w})
}

// M returns the number of stored edges (parallel edges counted separately).
func (g *Graph) M() int { return len(g.Edges) }

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() uint64 {
	var t uint64
	for _, e := range g.Edges {
		t += e.W
	}
	return t
}

// Degrees returns the weighted degree of every vertex.
func (g *Graph) Degrees() []uint64 {
	d := make([]uint64, g.N)
	for _, e := range g.Edges {
		d[e.U] += e.W
		d[e.V] += e.W
	}
	return d
}

// Validate checks structural invariants: endpoints in range, no loops,
// positive weights. It returns a descriptive error for the first violation.
func (g *Graph) Validate() error {
	if g.N < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.N)
	}
	for i, e := range g.Edges {
		if e.U < 0 || e.V < 0 || int(e.U) >= g.N || int(e.V) >= g.N {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range for n=%d", i, e.U, e.V, g.N)
		}
		if e.U == e.V {
			return fmt.Errorf("graph: edge %d is a loop at %d", i, e.U)
		}
		if e.W == 0 {
			return fmt.Errorf("graph: edge %d has zero weight", i)
		}
	}
	return nil
}

// Simplify combines parallel edges (summing weights) and drops loops,
// returning a simple weighted graph over the same vertices.
func (g *Graph) Simplify() *Graph {
	return &Graph{N: g.N, Edges: CombineParallel(g.Edges)}
}

// CombineParallel sorts the edges by normalized endpoints and merges
// parallel edges by summing their weights. Loops are removed. The input
// slice is not modified. The sort+merge runs over packed (U<<32|V, W)
// pairs through the pooled LSD radix kernel, so it is a handful of
// counting scans with no comparator dispatch and no steady-state
// allocation beyond the returned slice.
func CombineParallel(edges []Edge) []Edge {
	kvs := xsort.Borrow(len(edges))[:0]
	for _, e := range edges {
		if e.IsLoop() {
			continue
		}
		e = e.Normalize()
		kvs = append(kvs, xsort.KV{K: xsort.Key(e.U, e.V), V: e.W})
	}
	scratch := xsort.Borrow(len(kvs))
	merged := xsort.Combine(kvs, scratch)
	out := make([]Edge, len(merged))
	for i, kv := range merged {
		out[i] = Edge{U: xsort.KeyU(kv.K), V: xsort.KeyV(kv.K), W: kv.V}
	}
	xsort.Release(scratch)
	xsort.Release(kvs)
	return out
}

// CombineSorted merges runs of parallel edges in a slice already sorted by
// (U, V); the merge happens in place and the shortened slice is returned.
// Loops must already have been removed.
func CombineSorted(es []Edge) []Edge {
	out := es[:0]
	for _, e := range es {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.U == e.U && last.V == e.V {
				last.W += e.W
				continue
			}
		}
		out = append(out, e)
	}
	return out
}

// Relabel returns a new graph with every edge (u,v) replaced by
// (mapping[u], mapping[v]); loops produced by the mapping are dropped and
// parallel edges combined. newN is the vertex count of the image.
// This is Bulk Edge Contraction in its sequential form (§4.1). The
// rename, sort, and combine are fused over packed key/weight pairs: one
// pass packs the renamed survivors straight into radix scratch, so no
// intermediate edge array is materialized.
func (g *Graph) Relabel(mapping []int32, newN int) *Graph {
	kvs := xsort.Borrow(len(g.Edges))[:0]
	for _, e := range g.Edges {
		u, v := mapping[e.U], mapping[e.V]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		kvs = append(kvs, xsort.KV{K: xsort.Key(u, v), V: e.W})
	}
	scratch := xsort.Borrow(len(kvs))
	merged := xsort.Combine(kvs, scratch)
	out := &Graph{N: newN, Edges: make([]Edge, len(merged))}
	for i, kv := range merged {
		out.Edges[i] = Edge{U: xsort.KeyU(kv.K), V: xsort.KeyV(kv.K), W: kv.V}
	}
	xsort.Release(scratch)
	xsort.Release(kvs)
	return out
}

// CutValue returns the total weight of edges crossing the cut described by
// side: vertices v with side[v] == true form the cut V'.
func (g *Graph) CutValue(side []bool) uint64 {
	var c uint64
	for _, e := range g.Edges {
		if side[e.U] != side[e.V] {
			c += e.W
		}
	}
	return c
}

// DegreeCut returns the value of the singleton cut {v}: the weighted
// degree of v. The minimum over all v upper-bounds the minimum cut.
func (g *Graph) DegreeCut(v int32) uint64 {
	var c uint64
	for _, e := range g.Edges {
		if e.U == v || e.V == v {
			c += e.W
		}
	}
	return c
}

// MinDegreeVertex returns the vertex of smallest weighted degree and that
// degree. Useful as a trivial upper bound for the minimum cut.
func (g *Graph) MinDegreeVertex() (int32, uint64) {
	d := g.Degrees()
	best := int32(0)
	for v := 1; v < g.N; v++ {
		if d[v] < d[best] {
			best = int32(v)
		}
	}
	if g.N == 0 {
		return -1, 0
	}
	return best, d[best]
}
