package graph

import (
	"testing"
	"testing/quick"
)

func pathGraph(n int) *Graph {
	g := New(n)
	for i := 0; i < n-1; i++ {
		g.AddEdge(int32(i), int32(i+1), 1)
	}
	return g
}

func TestUnionFindBasics(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("initial count = %d", uf.Count())
	}
	if !uf.Union(0, 1) {
		t.Error("first union reported no-op")
	}
	if uf.Union(1, 0) {
		t.Error("repeated union reported merge")
	}
	uf.Union(2, 3)
	if uf.Count() != 3 {
		t.Errorf("count = %d, want 3", uf.Count())
	}
	if !uf.Connected(0, 1) || uf.Connected(0, 2) {
		t.Error("connectivity queries wrong")
	}
}

func TestUnionFindLabelsDense(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 3)
	uf.Union(1, 4)
	labels := uf.Labels()
	if labels[0] != labels[3] || labels[1] != labels[4] {
		t.Errorf("labels do not respect unions: %v", labels)
	}
	max := int32(0)
	for _, l := range labels {
		if l > max {
			max = l
		}
	}
	if int(max)+1 != uf.Count() {
		t.Errorf("labels not dense: max %d, count %d", max, uf.Count())
	}
	if labels[0] != 0 {
		t.Errorf("vertex 0 should get label 0, got %d", labels[0])
	}
}

func TestConnectedComponentsPath(t *testing.T) {
	g := pathGraph(10)
	labels, k := g.ConnectedComponents()
	if k != 1 {
		t.Fatalf("path has %d components", k)
	}
	for v, l := range labels {
		if l != 0 {
			t.Errorf("vertex %d label %d", v, l)
		}
	}
}

func TestConnectedComponentsForest(t *testing.T) {
	g := New(7)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	// 5 and 6 isolated
	_, k := g.ConnectedComponents()
	if k != 4 {
		t.Errorf("components = %d, want 4", k)
	}
}

func TestIsConnected(t *testing.T) {
	if !pathGraph(5).IsConnected() {
		t.Error("path not connected")
	}
	g := pathGraph(5)
	g.Edges = g.Edges[:len(g.Edges)-1]
	if g.IsConnected() {
		t.Error("broken path reported connected")
	}
	if !New(0).IsConnected() || !New(1).IsConnected() {
		t.Error("trivial graphs must be connected")
	}
	if New(2).IsConnected() {
		t.Error("two isolated vertices reported connected")
	}
}

func TestComponentOf(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(3, 4, 1)
	side := g.ComponentOf(0)
	want := []bool{true, true, false, false, false}
	for i := range want {
		if side[i] != want[i] {
			t.Errorf("ComponentOf(0)[%d] = %v, want %v", i, side[i], want[i])
		}
	}
}

func TestCSRMatchesUnionFind(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 30, 40)
		_, k1 := g.ConnectedComponents()
		_, k2 := BuildCSR(g).ConnectedComponents()
		return k1 == k2
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Error(err)
	}
}

func TestCSRStructure(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 7)
	c := BuildCSR(g)
	if c.Degree(1) != 2 {
		t.Errorf("degree(1) = %d, want 2", c.Degree(1))
	}
	if c.Degree(3) != 0 {
		t.Errorf("degree(3) = %d, want 0", c.Degree(3))
	}
	nb := c.Neighbors(1)
	if len(nb) != 2 {
		t.Fatalf("neighbors(1) = %v", nb)
	}
	seen := map[int32]bool{nb[0]: true, nb[1]: true}
	if !seen[0] || !seen[2] {
		t.Errorf("neighbors(1) = %v, want {0,2}", nb)
	}
}

func TestCSRIsConnected(t *testing.T) {
	if !BuildCSR(pathGraph(8)).IsConnected() {
		t.Error("CSR path not connected")
	}
	if BuildCSR(New(3)).IsConnected() {
		t.Error("CSR empty graph on 3 vertices reported connected")
	}
}

// Property: labels from CSR BFS and union-find induce the same partition.
func TestLabelPartitionsAgree(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 25, 30)
		l1, _ := g.ConnectedComponents()
		l2, _ := BuildCSR(g).ConnectedComponents()
		for i := 0; i < g.N; i++ {
			for j := i + 1; j < g.N; j++ {
				if (l1[i] == l1[j]) != (l2[i] == l2[j]) {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Error(err)
	}
}
