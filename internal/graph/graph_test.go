package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// randomGraph builds a random simple graph for property tests.
func randomGraph(seed uint64, n, m int) *Graph {
	s := rng.New(seed, 0, 0)
	g := New(n)
	for i := 0; i < m; i++ {
		u := int32(s.Intn(n))
		v := int32(s.Intn(n))
		if u != v {
			g.AddEdge(u, v, uint64(s.Intn(10)+1))
		}
	}
	return g
}

func TestAddEdgeIgnoresLoops(t *testing.T) {
	g := New(3)
	g.AddEdge(1, 1, 5)
	if g.M() != 0 {
		t.Errorf("loop was stored: m=%d", g.M())
	}
}

func TestAddEdgePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	New(2).AddEdge(0, 2, 1)
}

func TestAddEdgePanicsZeroWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-weight AddEdge did not panic")
		}
	}()
	New(2).AddEdge(0, 1, 0)
}

func TestCombineParallel(t *testing.T) {
	edges := []Edge{
		{U: 1, V: 0, W: 2},
		{U: 0, V: 1, W: 3},
		{U: 2, V: 2, W: 9}, // loop dropped
		{U: 1, V: 2, W: 1},
	}
	got := CombineParallel(edges)
	if len(got) != 2 {
		t.Fatalf("got %d edges, want 2: %v", len(got), got)
	}
	if got[0] != (Edge{U: 0, V: 1, W: 5}) {
		t.Errorf("combined edge = %v, want {0 1 5}", got[0])
	}
	if got[1] != (Edge{U: 1, V: 2, W: 1}) {
		t.Errorf("second edge = %v", got[1])
	}
}

func TestCombineParallelPreservesTotalWeight(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 20, 100)
		before := g.TotalWeight()
		s := g.Simplify()
		return s.TotalWeight() == before && s.Validate() == nil
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestRelabelContractsTriangle(t *testing.T) {
	// Contract edge (1,2) of a weighted triangle; parallel edges combine.
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(1, 2, 7)
	mapping := []int32{0, 1, 1}
	got := g.Relabel(mapping, 2)
	if got.N != 2 || len(got.Edges) != 1 {
		t.Fatalf("contracted graph = %+v", got)
	}
	if got.Edges[0].W != 5 {
		t.Errorf("combined weight = %d, want 5", got.Edges[0].W)
	}
}

func TestRelabelPreservesCutValue(t *testing.T) {
	// Contracting within one side of a cut preserves the cut's value
	// (Figure 2 of the paper).
	g := New(6)
	// Two triangles {0,1,2} and {3,4,5} joined by two unit edges.
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 2)
	g.AddEdge(3, 4, 2)
	g.AddEdge(4, 5, 2)
	g.AddEdge(3, 5, 2)
	g.AddEdge(0, 3, 1)
	g.AddEdge(2, 5, 1)
	side := []bool{true, true, true, false, false, false}
	want := g.CutValue(side)
	if want != 2 {
		t.Fatalf("setup: cut = %d, want 2", want)
	}
	// Contract (0,1) and (3,4).
	mapping := []int32{0, 0, 1, 2, 2, 3}
	cg := g.Relabel(mapping, 4)
	cside := []bool{true, true, false, false}
	if got := cg.CutValue(cside); got != want {
		t.Errorf("cut after contraction = %d, want %d", got, want)
	}
}

func TestCutValueSingleton(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 2)
	g.AddEdge(0, 3, 4)
	g.AddEdge(1, 2, 8)
	side := []bool{true, false, false, false}
	if got := g.CutValue(side); got != 7 {
		t.Errorf("singleton cut = %d, want 7", got)
	}
	if got := g.DegreeCut(0); got != 7 {
		t.Errorf("DegreeCut(0) = %d, want 7", got)
	}
}

func TestMinDegreeVertex(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 10)
	g.AddEdge(1, 2, 1)
	v, d := g.MinDegreeVertex()
	if v != 2 || d != 1 {
		t.Errorf("MinDegreeVertex = (%d,%d), want (2,1)", v, d)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := New(2)
	g.Edges = append(g.Edges, Edge{U: 0, V: 5, W: 1})
	if g.Validate() == nil {
		t.Error("Validate accepted out-of-range endpoint")
	}
	g.Edges = []Edge{{U: 1, V: 1, W: 1}}
	if g.Validate() == nil {
		t.Error("Validate accepted loop")
	}
	g.Edges = []Edge{{U: 0, V: 1, W: 0}}
	if g.Validate() == nil {
		t.Error("Validate accepted zero weight")
	}
	g.Edges = []Edge{{U: 0, V: 1, W: 3}}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate rejected valid graph: %v", err)
	}
}

func TestDegreesSumTwiceTotalWeight(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 15, 60)
		var sum uint64
		for _, d := range g.Degrees() {
			sum += d
		}
		return sum == 2*g.TotalWeight()
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Error(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.Edges[0].W = 99
	if g.Edges[0].W != 1 {
		t.Error("Clone shares edge storage")
	}
}
