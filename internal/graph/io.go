package graph

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrMalformed tags every input-format error returned by the loaders:
// unparsable lines, negative or out-of-range endpoints, zero weights,
// bad headers. Callers distinguish caller mistakes from I/O failures
// with errors.Is(err, ErrMalformed) — the service layer maps the former
// to HTTP 400 and everything else to 500.
var ErrMalformed = errors.New("malformed graph input")

// malformedf builds a descriptive format error wrapping ErrMalformed.
func malformedf(format string, args ...interface{}) error {
	return fmt.Errorf("graph: "+format+": %w", append(args, ErrMalformed)...)
}

// parseWeight parses an edge weight strictly: a positive integer fitting
// uint64. Weights feed unchecked uint64 accumulators downstream (degree
// sums, sampling probabilities), so NaN/Inf spellings, float syntax,
// negatives, zero, and overflow must all stop here — each with a message
// naming what was wrong rather than a generic parse failure.
func parseWeight(s string) (uint64, error) {
	w, err := strconv.ParseUint(s, 10, 64)
	if err == nil {
		if w == 0 {
			return 0, errors.New("zero weight")
		}
		return w, nil
	}
	if errors.Is(err, strconv.ErrRange) {
		return 0, fmt.Errorf("weight %q overflows uint64", s)
	}
	if f, ferr := strconv.ParseFloat(s, 64); ferr == nil {
		switch {
		case math.IsNaN(f):
			return 0, errors.New("weight is NaN")
		case math.IsInf(f, 0):
			return 0, fmt.Errorf("non-finite weight %q", s)
		case f < 0:
			return 0, fmt.Errorf("negative weight %q", s)
		default:
			return 0, fmt.Errorf("non-integer weight %q", s)
		}
	}
	return 0, fmt.Errorf("bad weight %q", s)
}

// WriteEdgeList serializes g in the artifact's plain edge-list format:
// a header line "n m" followed by one "u v w" line per edge.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSNAP parses the SNAP text format the artifact's dataset scripts
// consume: one "u v" (or "u v w") pair per line, '#'-comment lines, no
// header. The vertex count is inferred as max id + 1. Weights default
// to 1; self loops are dropped.
func ReadSNAP(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	var total uint64
	maxID := int64(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, malformedf("snap line %d: need 'u v [w]'", line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil || u < 0 {
			return nil, malformedf("snap line %d: bad endpoint %q", line, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || v < 0 {
			return nil, malformedf("snap line %d: bad endpoint %q", line, fields[1])
		}
		w := uint64(1)
		if len(fields) >= 3 {
			w, err = parseWeight(fields[2])
			if err != nil {
				return nil, malformedf("snap line %d: %v", line, err)
			}
		}
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
		if u != v {
			if total+w < total {
				return nil, malformedf("snap line %d: total weight overflows uint64", line)
			}
			total += w
			edges = append(edges, Edge{U: int32(u), V: int32(v), W: w})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &Graph{N: int(maxID + 1), Edges: edges}, nil
}

// ReadEdgeList parses the format produced by WriteEdgeList. A missing
// weight column defaults to weight 1, so unweighted graph files load too.
// Lines starting with '#' or '%' are comments.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *Graph
	var total uint64
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '#' || text[0] == '%' {
			continue
		}
		fields := strings.Fields(text)
		if g == nil {
			if len(fields) < 2 {
				return nil, malformedf("line %d: header needs 'n m'", line)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil || n < 0 {
				return nil, malformedf("line %d: bad vertex count %q", line, fields[0])
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil || m < 0 {
				return nil, malformedf("line %d: bad edge count %q", line, fields[1])
			}
			g = &Graph{N: n, Edges: make([]Edge, 0, m)}
			continue
		}
		if len(fields) < 2 {
			return nil, malformedf("line %d: edge needs 'u v [w]'", line)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, malformedf("line %d: bad endpoint %q", line, fields[0])
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, malformedf("line %d: bad endpoint %q", line, fields[1])
		}
		w := uint64(1)
		if len(fields) >= 3 {
			w, err = parseWeight(fields[2])
			if err != nil {
				return nil, malformedf("line %d: %v", line, err)
			}
		}
		if u < 0 || v < 0 || int(u) >= g.N || int(v) >= g.N {
			return nil, malformedf("line %d: edge (%d,%d) out of range for n=%d", line, u, v, g.N)
		}
		if u != v {
			if total+w < total {
				return nil, malformedf("line %d: total weight overflows uint64", line)
			}
			total += w
			g.Edges = append(g.Edges, Edge{U: int32(u), V: int32(v), W: w})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, malformedf("empty input")
	}
	return g, nil
}
