package graph

import "sync"

// Snapshot is an immutable, cheaply shareable view of a graph. The edge
// array is copied exactly once when the snapshot is taken; afterwards any
// number of concurrent readers (HTTP handlers, BSP workers, cache
// entries) may slice it freely without synchronization. A content
// fingerprint identifies the structure, so callers can key caches by
// (id, fingerprint) and never serve results computed on a different
// graph.
//
// Snapshots are the unit the service layer's graph registry hands to the
// query engine: the engine slices Edges() across the virtual processors
// with dist.BlockRange — zero further copies — and the kernels, which
// treat their local edge slices as read-only inputs, run directly on the
// shared storage.
type Snapshot struct {
	n           int
	edges       []Edge
	totalWeight uint64
	fingerprint uint64

	// probe caches the lazily computed statistics probe (see probe.go).
	// sync.Once keeps the snapshot safe for concurrent readers.
	probeOnce sync.Once
	probe     *Probe
}

// Snapshot freezes the current state of g into an immutable view.
// Mutating g afterwards does not affect the snapshot.
func (g *Graph) Snapshot() *Snapshot {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	s := &Snapshot{n: g.N, edges: edges}
	// FNV-1a over (n, edges) — stable across runs, order-sensitive by
	// design (the edge array layout determines the BSP distribution).
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	mix := func(w uint64) {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(g.N))
	for _, e := range edges {
		mix(uint64(uint32(e.U)))
		mix(uint64(uint32(e.V)))
		mix(e.W)
		s.totalWeight += e.W
	}
	s.fingerprint = h
	return s
}

// N returns the vertex count.
func (s *Snapshot) N() int { return s.n }

// M returns the edge count (parallel edges counted separately).
func (s *Snapshot) M() int { return len(s.edges) }

// TotalWeight returns the sum of all edge weights.
func (s *Snapshot) TotalWeight() uint64 { return s.totalWeight }

// Edges returns the frozen edge array. Callers must treat it as
// read-only; it is shared by every user of the snapshot.
func (s *Snapshot) Edges() []Edge { return s.edges }

// Fingerprint returns the FNV-1a content hash of (n, edges).
func (s *Snapshot) Fingerprint() uint64 { return s.fingerprint }

// Graph returns a *Graph view aliasing the snapshot's storage, for
// passing to APIs that take a graph. The returned graph must not be
// mutated.
func (s *Snapshot) Graph() *Graph { return &Graph{N: s.n, Edges: s.edges} }
