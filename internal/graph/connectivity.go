package graph

// ConnectedComponents computes a dense component labelling of g with
// union-find. Labels are assigned in order of first appearance, so vertex
// 0 always has label 0.
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	uf := NewUnionFind(g.N)
	for _, e := range g.Edges {
		uf.Union(e.U, e.V)
	}
	return uf.Labels(), uf.Count()
}

// IsConnected reports whether g has exactly one connected component.
// Empty and single-vertex graphs count as connected.
func (g *Graph) IsConnected() bool {
	if g.N <= 1 {
		return true
	}
	uf := NewUnionFind(g.N)
	for _, e := range g.Edges {
		if uf.Union(e.U, e.V) && uf.Count() == 1 {
			return true
		}
	}
	return uf.Count() == 1
}

// ComponentOf returns the vertex set of the component containing v as a
// boolean membership slice.
func (g *Graph) ComponentOf(v int32) []bool {
	labels, _ := g.ConnectedComponents()
	side := make([]bool, g.N)
	for i := range side {
		side[i] = labels[i] == labels[v]
	}
	return side
}
