package graph

// CSR is a compressed sparse row adjacency representation for fast
// traversals. Each undirected edge appears twice (once per direction).
type CSR struct {
	N      int
	Offset []int32  // len N+1
	Adj    []int32  // neighbor ids, len 2m
	Weight []uint64 // parallel to Adj
}

// BuildCSR converts an edge array to CSR in O(n + m).
func BuildCSR(g *Graph) *CSR {
	n := g.N
	deg := make([]int32, n+1)
	for _, e := range g.Edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	c := &CSR{
		N:      n,
		Offset: deg,
		Adj:    make([]int32, len(g.Edges)*2),
		Weight: make([]uint64, len(g.Edges)*2),
	}
	pos := make([]int32, n)
	copy(pos, deg[:n])
	for _, e := range g.Edges {
		c.Adj[pos[e.U]] = e.V
		c.Weight[pos[e.U]] = e.W
		pos[e.U]++
		c.Adj[pos[e.V]] = e.U
		c.Weight[pos[e.V]] = e.W
		pos[e.V]++
	}
	return c
}

// Neighbors returns the adjacency slice of v. The result aliases internal
// storage and must not be modified.
func (c *CSR) Neighbors(v int32) []int32 {
	return c.Adj[c.Offset[v]:c.Offset[v+1]]
}

// Degree returns the unweighted degree of v (loops excluded at build).
func (c *CSR) Degree(v int32) int {
	return int(c.Offset[v+1] - c.Offset[v])
}

// ConnectedComponents labels every vertex with a component id in
// [0, count) using an iterative BFS over the CSR structure; this is the
// "linear-time graph traversal" sequential baseline (BGL's approach).
func (c *CSR) ConnectedComponents() (labels []int32, count int) {
	labels = make([]int32, c.N)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int32, 0, c.N)
	id := int32(0)
	for s := int32(0); int(s) < c.N; s++ {
		if labels[s] >= 0 {
			continue
		}
		labels[s] = id
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, w := range c.Neighbors(v) {
				if labels[w] < 0 {
					labels[w] = id
					queue = append(queue, w)
				}
			}
		}
		id++
	}
	return labels, int(id)
}

// IsConnected reports whether the graph has a single connected component
// (true for the empty and single-vertex graph).
func (c *CSR) IsConnected() bool {
	if c.N <= 1 {
		return true
	}
	_, k := c.ConnectedComponents()
	return k == 1
}
