package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It backs the root's connected-components computation in
// iterated sampling and the prefix-selection step of bulk contraction.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{}
	uf.Reset(n)
	return uf
}

// Reset restores the structure to n singleton sets, reusing the backing
// arrays when their capacity allows — the arena path of the contraction
// kernels, which burn through one union-find per recursion node.
func (uf *UnionFind) Reset(n int) {
	if cap(uf.parent) >= n {
		uf.parent = uf.parent[:n]
		uf.rank = uf.rank[:n]
	} else {
		uf.parent = make([]int32, n)
		uf.rank = make([]int8, n)
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
		uf.rank[i] = 0
	}
	uf.count = n
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets of x and y; it reports whether they were distinct.
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int32) bool { return uf.Find(x) == uf.Find(y) }

// Labels returns a dense labelling: a slice mapping every element to a
// component id in [0, Count()), assigned in order of first appearance.
func (uf *UnionFind) Labels() []int32 {
	n := len(uf.parent)
	labels := make([]int32, n)
	scratch := make([]int32, n)
	uf.LabelsInto(labels, scratch)
	return labels
}

// LabelsInto is Labels with caller-provided storage: labels receives the
// dense labelling and scratch (both length ≥ len(parent)) is the
// root→label scatter table. The label assignment order (first
// appearance) is identical to Labels'. It returns the label count.
// Replaces the old map[int32]int32 remap: a dense table turns every
// hash+probe into one array write.
func (uf *UnionFind) LabelsInto(labels, scratch []int32) int {
	n := len(uf.parent)
	labels = labels[:n]
	scratch = scratch[:n]
	for i := range scratch {
		scratch[i] = -1
	}
	next := int32(0)
	for i := 0; i < n; i++ {
		r := uf.Find(int32(i))
		id := scratch[r]
		if id < 0 {
			id = next
			scratch[r] = id
			next++
		}
		labels[i] = id
	}
	return int(next)
}
