package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression. It backs the root's connected-components computation in
// iterated sampling and the prefix-selection step of bulk contraction.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// NewUnionFind returns n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = int32(i)
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int32) int32 {
	root := x
	for uf.parent[root] != root {
		root = uf.parent[root]
	}
	for uf.parent[x] != root {
		uf.parent[x], x = root, uf.parent[x]
	}
	return root
}

// Union merges the sets of x and y; it reports whether they were distinct.
func (uf *UnionFind) Union(x, y int32) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Connected reports whether x and y are in the same set.
func (uf *UnionFind) Connected(x, y int32) bool { return uf.Find(x) == uf.Find(y) }

// Labels returns a dense labelling: a slice mapping every element to a
// component id in [0, Count()), assigned in order of first appearance.
func (uf *UnionFind) Labels() []int32 {
	labels := make([]int32, len(uf.parent))
	next := int32(0)
	remap := make(map[int32]int32, uf.count)
	for i := range uf.parent {
		r := uf.Find(int32(i))
		id, ok := remap[r]
		if !ok {
			id = next
			remap[r] = id
			next++
		}
		labels[i] = id
	}
	return labels
}
