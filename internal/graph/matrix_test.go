package graph

import (
	"testing"
	"testing/quick"
)

func TestMatrixFromGraphSymmetric(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 1, 3) // parallel: combined to 5
	g.AddEdge(1, 2, 7)
	m := MatrixFromGraph(g)
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Errorf("At(0,1)=%d At(1,0)=%d, want 5", m.At(0, 1), m.At(1, 0))
	}
	if m.At(0, 2) != 0 {
		t.Errorf("absent edge has weight %d", m.At(0, 2))
	}
	if m.At(0, 0) != 0 {
		t.Error("diagonal nonzero")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 12, 40).Simplify()
		m := MatrixFromGraph(g)
		back := m.ToGraph().Simplify()
		if back.TotalWeight() != g.TotalWeight() {
			return false
		}
		return m.TotalWeight() == g.TotalWeight()
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestMatrixContract(t *testing.T) {
	// Triangle with weights; contract vertices 1,2 together.
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	g.AddEdge(1, 2, 7)
	m := MatrixFromGraph(g)
	c := m.Contract([]int32{0, 1, 1}, 2)
	if c.N != 2 {
		t.Fatalf("contracted N = %d", c.N)
	}
	if c.At(0, 1) != 5 {
		t.Errorf("contracted weight = %d, want 5", c.At(0, 1))
	}
	if c.At(0, 0) != 0 || c.At(1, 1) != 0 {
		t.Error("diagonal not zeroed after contraction")
	}
	if c.CutOfTwo() != 5 {
		t.Errorf("CutOfTwo = %d, want 5", c.CutOfTwo())
	}
}

func TestMatrixContractMatchesRelabel(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		g := randomGraph(seed, 10, 30)
		// Random mapping onto 4 groups covering all of 0..3 is not
		// required; just compare weights.
		mapping := make([]int32, g.N)
		s := seed
		for i := range mapping {
			s = s*6364136223846793005 + 1442695040888963407
			mapping[i] = int32(s % 4)
		}
		a := MatrixFromGraph(g).Contract(mapping, 4)
		b := MatrixFromGraph(g.Relabel(mapping, 4))
		for i := range a.W {
			if a.W[i] != b.W[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestMatrixWeightedDegree(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(0, 2, 3)
	m := MatrixFromGraph(g)
	if d := m.WeightedDegree(0); d != 5 {
		t.Errorf("WeightedDegree(0) = %d, want 5", d)
	}
	if d := m.WeightedDegree(1); d != 2 {
		t.Errorf("WeightedDegree(1) = %d, want 2", d)
	}
}

func TestMatrixCloneIsDeep(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 4)
	c := m.Clone()
	c.Set(0, 1, 9)
	if m.At(0, 1) != 4 {
		t.Error("Clone shares storage")
	}
}
