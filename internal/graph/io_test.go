package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(99, 20, 50)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip changed shape: n %d->%d, m %d->%d", g.N, back.N, len(g.Edges), len(back.Edges))
	}
	for i := range g.Edges {
		if g.Edges[i] != back.Edges[i] {
			t.Fatalf("edge %d changed: %v -> %v", i, g.Edges[i], back.Edges[i])
		}
	}
}

func TestReadEdgeListDefaultsWeight(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges[0].W != 1 || g.Edges[1].W != 1 {
		t.Errorf("default weight not 1: %+v", g.Edges)
	}
}

func TestReadEdgeListComments(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# header comment\n2 1\n% mid comment\n0 1 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 || len(g.Edges) != 1 || g.Edges[0].W != 7 {
		t.Errorf("parsed %+v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"2\n",            // short header
		"2 1\n0\n",       // short edge
		"2 1\n0 5 1\n",   // out of range
		"2 1\n0 1 0\n",   // zero weight
		"x 1\n",          // bad n
		"2 1\n0 one 1\n", // bad endpoint
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestLoaderErrorsWrapErrMalformed(t *testing.T) {
	edgelist := []string{
		"",                       // empty input
		"2\n",                    // short header
		"-1 0\n",                 // negative vertex count
		"2 1\n0\n",               // short edge
		"2 1\n0 5 1\n",           // out of range
		"2 1\n-1 1 1\n",          // negative endpoint
		"2 1\n0 1 0\n",           // zero weight
		"2 1\n0 99999999999 1\n", // endpoint overflows int32
	}
	for _, in := range edgelist {
		_, err := ReadEdgeList(strings.NewReader(in))
		if err == nil {
			t.Errorf("edge list %q accepted", in)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("edge list %q: error %v does not wrap ErrMalformed", in, err)
		}
	}
	snap := []string{
		"0\n",             // short line
		"a b\n",           // unparsable endpoints
		"-1 2\n",          // negative endpoint
		"0 99999999999\n", // endpoint overflows int32
		"0 1 0\n",         // zero weight
		"0 1 x\n",         // bad weight
	}
	for _, in := range snap {
		_, err := ReadSNAP(strings.NewReader(in))
		if err == nil {
			t.Errorf("snap %q accepted", in)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("snap %q: error %v does not wrap ErrMalformed", in, err)
		}
	}
	// The error text stays descriptive: line number and offending token.
	_, err := ReadEdgeList(strings.NewReader("2 1\n0 one 1\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "one") {
		t.Errorf("error lost context: %v", err)
	}
}

// Hostile weights — NaN, infinities, negatives, fractions, overflow —
// must be rejected as malformed, never silently wrapped or truncated.
func TestWeightHardening(t *testing.T) {
	cases := []struct {
		weight string
		want   string // substring of the error
	}{
		{"NaN", "NaN"},
		{"nan", "NaN"},
		{"Inf", "non-finite"},
		{"-Inf", "non-finite"},
		{"-3", "negative"},
		{"-0.5", "negative"},
		{"2.5", "non-integer"},
		{"1e500", "bad weight"},
		{"18446744073709551616", "overflows"}, // 2^64
		{"99999999999999999999999", "overflows"},
		{"0", "zero"},
		{"0x10", "bad weight"},
	}
	for _, c := range cases {
		in := "2 1\n0 1 " + c.weight + "\n"
		_, err := ReadEdgeList(strings.NewReader(in))
		if err == nil {
			t.Errorf("edge list weight %q accepted", c.weight)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("weight %q: error %v does not wrap ErrMalformed", c.weight, err)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("weight %q: error %q lacks %q", c.weight, err, c.want)
		}
		if _, err := ReadSNAP(strings.NewReader("0 1 " + c.weight + "\n")); err == nil {
			t.Errorf("snap weight %q accepted", c.weight)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("snap weight %q: error %v does not wrap ErrMalformed", c.weight, err)
		}
	}
	// The format is strict decimal integers: scientific notation is
	// rejected even when integer-valued, so files stay canonical.
	if _, err := ReadEdgeList(strings.NewReader("2 1\n0 1 1e3\n")); !errors.Is(err, ErrMalformed) {
		t.Errorf("1e3: err = %v, want ErrMalformed", err)
	}
}

// Edges whose weights individually fit but whose sum wraps uint64 must
// be rejected: downstream cut values are total-weight arithmetic.
func TestTotalWeightOverflow(t *testing.T) {
	const half = "9223372036854775808" // 2^63
	in := "3 2\n0 1 " + half + "\n1 2 " + half + "\n"
	_, err := ReadEdgeList(strings.NewReader(in))
	if err == nil {
		t.Fatal("total-weight overflow accepted")
	}
	if !errors.Is(err, ErrMalformed) || !strings.Contains(err.Error(), "total") {
		t.Errorf("err = %v, want ErrMalformed about the total weight", err)
	}
	if _, err := ReadSNAP(strings.NewReader("0 1 " + half + "\n1 2 " + half + "\n")); err == nil {
		t.Error("snap total-weight overflow accepted")
	}
}

func TestReadEdgeListDropsSelfLoops(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\n1 1 4\n0 2 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 {
		t.Errorf("self loop kept: %+v", g.Edges)
	}
}

func TestReadSNAP(t *testing.T) {
	in := "# Directed graph: example\n# Nodes: 5 Edges: 3\n0\t1\n3 4 7\n2 2\n1 3\n"
	g, err := ReadSNAP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 5 {
		t.Errorf("inferred n = %d, want 5", g.N)
	}
	if len(g.Edges) != 3 { // self loop (2,2) dropped
		t.Fatalf("edges = %+v", g.Edges)
	}
	if g.Edges[1].W != 7 {
		t.Errorf("weighted snap edge = %+v", g.Edges[1])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSNAPErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 1 0\n", "-1 2\n"} {
		if _, err := ReadSNAP(strings.NewReader(in)); err == nil {
			t.Errorf("snap input %q accepted", in)
		}
	}
}

func TestReadSNAPEmpty(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader("# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 0 || len(g.Edges) != 0 {
		t.Errorf("empty snap: %+v", g)
	}
}
