package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestEdgeListRoundTrip(t *testing.T) {
	g := randomGraph(99, 20, 50)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != g.N || len(back.Edges) != len(g.Edges) {
		t.Fatalf("round trip changed shape: n %d->%d, m %d->%d", g.N, back.N, len(g.Edges), len(back.Edges))
	}
	for i := range g.Edges {
		if g.Edges[i] != back.Edges[i] {
			t.Fatalf("edge %d changed: %v -> %v", i, g.Edges[i], back.Edges[i])
		}
	}
}

func TestReadEdgeListDefaultsWeight(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\n0 1\n1 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Edges[0].W != 1 || g.Edges[1].W != 1 {
		t.Errorf("default weight not 1: %+v", g.Edges)
	}
}

func TestReadEdgeListComments(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("# header comment\n2 1\n% mid comment\n0 1 7\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 2 || len(g.Edges) != 1 || g.Edges[0].W != 7 {
		t.Errorf("parsed %+v", g)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"2\n",            // short header
		"2 1\n0\n",       // short edge
		"2 1\n0 5 1\n",   // out of range
		"2 1\n0 1 0\n",   // zero weight
		"x 1\n",          // bad n
		"2 1\n0 one 1\n", // bad endpoint
	}
	for _, c := range cases {
		if _, err := ReadEdgeList(strings.NewReader(c)); err == nil {
			t.Errorf("input %q: expected error", c)
		}
	}
}

func TestLoaderErrorsWrapErrMalformed(t *testing.T) {
	edgelist := []string{
		"",                       // empty input
		"2\n",                    // short header
		"-1 0\n",                 // negative vertex count
		"2 1\n0\n",               // short edge
		"2 1\n0 5 1\n",           // out of range
		"2 1\n-1 1 1\n",          // negative endpoint
		"2 1\n0 1 0\n",           // zero weight
		"2 1\n0 99999999999 1\n", // endpoint overflows int32
	}
	for _, in := range edgelist {
		_, err := ReadEdgeList(strings.NewReader(in))
		if err == nil {
			t.Errorf("edge list %q accepted", in)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("edge list %q: error %v does not wrap ErrMalformed", in, err)
		}
	}
	snap := []string{
		"0\n",             // short line
		"a b\n",           // unparsable endpoints
		"-1 2\n",          // negative endpoint
		"0 99999999999\n", // endpoint overflows int32
		"0 1 0\n",         // zero weight
		"0 1 x\n",         // bad weight
	}
	for _, in := range snap {
		_, err := ReadSNAP(strings.NewReader(in))
		if err == nil {
			t.Errorf("snap %q accepted", in)
			continue
		}
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("snap %q: error %v does not wrap ErrMalformed", in, err)
		}
	}
	// The error text stays descriptive: line number and offending token.
	_, err := ReadEdgeList(strings.NewReader("2 1\n0 one 1\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "one") {
		t.Errorf("error lost context: %v", err)
	}
}

func TestReadEdgeListDropsSelfLoops(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\n1 1 4\n0 2 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 1 {
		t.Errorf("self loop kept: %+v", g.Edges)
	}
}

func TestReadSNAP(t *testing.T) {
	in := "# Directed graph: example\n# Nodes: 5 Edges: 3\n0\t1\n3 4 7\n2 2\n1 3\n"
	g, err := ReadSNAP(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 5 {
		t.Errorf("inferred n = %d, want 5", g.N)
	}
	if len(g.Edges) != 3 { // self loop (2,2) dropped
		t.Fatalf("edges = %+v", g.Edges)
	}
	if g.Edges[1].W != 7 {
		t.Errorf("weighted snap edge = %+v", g.Edges[1])
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadSNAPErrors(t *testing.T) {
	for _, in := range []string{"0\n", "a b\n", "0 1 0\n", "-1 2\n"} {
		if _, err := ReadSNAP(strings.NewReader(in)); err == nil {
			t.Errorf("snap input %q accepted", in)
		}
	}
}

func TestReadSNAPEmpty(t *testing.T) {
	g, err := ReadSNAP(strings.NewReader("# only comments\n"))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 0 || len(g.Edges) != 0 {
		t.Errorf("empty snap: %+v", g)
	}
}
