package graph

// ProbeLevelCap bounds the BFS depth of the statistics probe. A sweep
// that is still expanding when it hits the cap reports the cap itself:
// "the diameter is at least this" is all the planner needs to classify
// a graph as high-diameter, and the cap keeps the probe O(n + m) with a
// small constant even on pathological inputs.
const ProbeLevelCap = 4096

// Probe holds the cheap snapshot statistics the query planner feeds to
// its cost models: an estimated diameter from a capped double-sweep BFS
// and the weight skew of the edge distribution. It is computed lazily,
// exactly once per snapshot, and cached both on the snapshot and on any
// Plan built from it.
type Probe struct {
	// EstDiameter is a lower-bound diameter estimate: a BFS from vertex 0
	// finds the farthest reachable vertex u, and a second BFS from u
	// measures its eccentricity (the classic double-sweep heuristic, exact
	// on trees and within 2x in general). On a disconnected graph it
	// probes the component of vertex 0 only. Both sweeps stop at
	// ProbeLevelCap levels.
	EstDiameter int

	// MaxWeight, MeanWeight, and WeightSkew (= max/mean, >= 1, or 1 for
	// the empty graph) summarize the edge-weight distribution; a skew near
	// 1 means near-uniform weights.
	MaxWeight  uint64
	MeanWeight float64
	WeightSkew float64
}

// Probe returns the snapshot's statistics probe, computing it on first
// use. Safe for concurrent callers; the result is shared and read-only.
func (s *Snapshot) Probe() *Probe {
	s.probeOnce.Do(func() { s.probe = computeProbe(s) })
	return s.probe
}

func computeProbe(s *Snapshot) *Probe {
	pr := &Probe{WeightSkew: 1}
	if len(s.edges) > 0 {
		var max uint64
		for _, e := range s.edges {
			if e.W > max {
				max = e.W
			}
		}
		pr.MaxWeight = max
		pr.MeanWeight = float64(s.totalWeight) / float64(len(s.edges))
		if pr.MeanWeight > 0 {
			pr.WeightSkew = float64(max) / pr.MeanWeight
		}
	}
	if s.n == 0 {
		return pr
	}
	c := BuildCSR(s.Graph())
	far, _ := bfsEccentricity(c, 0)
	_, ecc := bfsEccentricity(c, far)
	pr.EstDiameter = ecc
	return pr
}

// bfsEccentricity runs a BFS from src capped at ProbeLevelCap levels and
// returns the last-discovered vertex and the level it was found at.
func bfsEccentricity(c *CSR, src int32) (far int32, ecc int) {
	seen := make([]bool, c.N)
	seen[src] = true
	frontier := []int32{src}
	next := make([]int32, 0, 64)
	far = src
	for level := 0; len(frontier) > 0 && level < ProbeLevelCap; level++ {
		next = next[:0]
		for _, v := range frontier {
			for _, w := range c.Neighbors(v) {
				if !seen[w] {
					seen[w] = true
					next = append(next, w)
				}
			}
		}
		if len(next) > 0 {
			ecc = level + 1
			far = next[len(next)-1]
		}
		frontier, next = next, frontier
	}
	return far, ecc
}
