package graph

import "testing"

func TestProbePath(t *testing.T) {
	s := pathGraph(100).Snapshot()
	pr := s.Probe()
	if pr.EstDiameter != 99 {
		t.Fatalf("path diameter estimate = %d, want 99", pr.EstDiameter)
	}
	if pr.WeightSkew != 1 {
		t.Fatalf("uniform weights skew = %v, want 1", pr.WeightSkew)
	}
	if again := s.Probe(); again != pr {
		t.Fatal("probe not cached on the snapshot")
	}
}

func TestProbeDoubleSweep(t *testing.T) {
	// Star with a tail hanging off a leaf: BFS from the hub's vertex 0
	// underestimates; the second sweep from the farthest vertex recovers
	// the true diameter.
	g := New(12)
	for v := 1; v <= 5; v++ {
		g.AddEdge(0, int32(v), 1)
	}
	for v := 5; v < 11; v++ {
		g.AddEdge(int32(v), int32(v+1), 1)
	}
	pr := g.Snapshot().Probe()
	// True diameter: leaf 1..4 -> hub -> 5 -> ... -> 11 = 2 + 6 = 8.
	if pr.EstDiameter != 8 {
		t.Fatalf("double-sweep diameter = %d, want 8", pr.EstDiameter)
	}
}

func TestProbeWeightSkew(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 10)
	pr := g.Snapshot().Probe()
	if pr.MaxWeight != 10 {
		t.Fatalf("max weight = %d, want 10", pr.MaxWeight)
	}
	if pr.MeanWeight != 4 {
		t.Fatalf("mean weight = %v, want 4", pr.MeanWeight)
	}
	if pr.WeightSkew != 2.5 {
		t.Fatalf("weight skew = %v, want 2.5", pr.WeightSkew)
	}
}

func TestProbeEmptyAndDisconnected(t *testing.T) {
	empty := New(0).Snapshot().Probe()
	if empty.EstDiameter != 0 || empty.WeightSkew != 1 {
		t.Fatalf("empty probe = %+v", empty)
	}
	// Two components: the probe measures the component of vertex 0.
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	pr := g.Snapshot().Probe()
	if pr.EstDiameter != 2 {
		t.Fatalf("disconnected probe diameter = %d, want 2", pr.EstDiameter)
	}
}

func TestPlanFactsCarriesProbe(t *testing.T) {
	s := pathGraph(10).Snapshot()
	pl := s.PlanFacts()
	if pl.Probe == nil || pl.Probe != s.Probe() {
		t.Fatal("PlanFacts did not cache the snapshot probe on the plan")
	}
}
