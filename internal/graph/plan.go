package graph

// Plan holds the snapshot-invariant facts of a graph that every query
// otherwise recomputes with per-query collectives: the replicated edge
// view, the edge count, the weighted degree array and its min-degree
// singleton cut, the total weight, and the exact connectivity labelling.
// The serving layer builds one Plan per (snapshot version, machine size)
// at first query and threads it into the kernels through their Options,
// turning the warm query path communication-free where the facts allow.
//
// Accounting honesty: a kernel that consumes a plan fact instead of
// running the cold collective must call bsp.Comm.SkipComm with the
// matching CollectiveCost, so the run's Stats report the avoided
// supersteps and words explicitly rather than silently shrinking. The
// cost table is *measured* (the plan builder runs the real cold
// collectives once and reads their Stats), so it tracks the collective
// implementations instead of hand-derived formulas.
type Plan struct {
	N int // vertex count of the snapshot
	M int // edge count of the snapshot
	// Version and Fingerprint identify the snapshot the plan was built
	// from (registry version and content hash); P is the machine size the
	// cost table was measured at.
	Version     uint64
	Fingerprint uint64
	P           int

	// Edges is the replicated edge view — what AllGatherEdges would
	// reassemble on every rank. It aliases the snapshot's frozen array
	// (rank-order reassembly reproduces the snapshot order exactly), so
	// holding a plan costs no edge copies. Read-only.
	Edges []Edge

	// Degrees is the weighted degree of every vertex; MinDegVertex is the
	// first vertex attaining the minimum MinDegree — the singleton cut the
	// exact min cut algorithm folds in. TotalWeight is the global edge
	// weight sum.
	Degrees      []uint64
	MinDegVertex int
	MinDegree    uint64
	TotalWeight  uint64

	// Connected, Labels, and Components are the exact connectivity result.
	// Labels are dense in first-occurrence order (vertex 0 → label 0),
	// matching both graph.ConnectedComponents and cc.Parallel's canonical
	// final labelling, so a warm answer is bit-identical to a cold one.
	Connected  bool
	Labels     []int32
	Components int

	// Probe is the snapshot's statistics probe (estimated diameter,
	// weight skew) — the planner's cost-model inputs, cached here so a
	// plan hit never recomputes the BFS sweeps.
	Probe *Probe

	// Measured cold-path costs of the collectives a warm query skips.
	CCCost     CollectiveCost // connectivity check (cc.Parallel)
	CountCost  CollectiveCost // edge-count AllReduce
	GatherCost CollectiveCost // edge replication (AllGatherEdges)
	DegreeCost CollectiveCost // weighted-degree AllReduce
	WeightCost CollectiveCost // total-weight AllReduce
}

// CollectiveCost records what a skipped collective would have cost:
// its superstep count and communication volume in words.
type CollectiveCost struct {
	Collectives int
	Words       uint64
}

// Matches reports whether the plan describes an n-vertex input — the
// kernels' guard against a stale or mismatched plan being threaded in.
func (pl *Plan) Matches(n int) bool { return pl != nil && pl.N == n }

// PlanFacts computes the snapshot-invariant facts of s sequentially and
// returns a Plan with a zero cost table (the caller measures costs at its
// machine size). The degree scan and connectivity labelling reproduce the
// distributed kernels' results exactly: degrees are plain sums (identical
// to a partial-sum AllReduce), the min-degree vertex is the first
// minimum, and labels come from union-find in first-occurrence order.
func (s *Snapshot) PlanFacts() *Plan {
	pl := &Plan{
		N:           s.n,
		M:           len(s.edges),
		Fingerprint: s.fingerprint,
		Edges:       s.edges,
		TotalWeight: s.totalWeight,
	}
	deg := make([]uint64, s.n)
	for _, e := range s.edges {
		deg[e.U] += e.W
		deg[e.V] += e.W
	}
	pl.Degrees = deg
	if s.n > 0 {
		pl.MinDegVertex, pl.MinDegree = 0, deg[0]
		for v := 1; v < s.n; v++ {
			if deg[v] < pl.MinDegree {
				pl.MinDegVertex, pl.MinDegree = v, deg[v]
			}
		}
	}
	pl.Labels, pl.Components = s.Graph().ConnectedComponents()
	pl.Connected = pl.Components <= 1
	pl.Probe = s.Probe()
	return pl
}
