package graph

import "testing"

func TestSnapshotIsImmutable(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 5)
	s := g.Snapshot()

	// Mutate the original after the snapshot; the view must not move.
	g.AddEdge(2, 3, 7)
	g.Edges[0].W = 99

	if s.N() != 4 || s.M() != 2 {
		t.Fatalf("snapshot shape n=%d m=%d, want 4, 2", s.N(), s.M())
	}
	if s.Edges()[0].W != 3 {
		t.Errorf("snapshot saw mutation of original: %+v", s.Edges()[0])
	}
	if s.TotalWeight() != 8 {
		t.Errorf("total weight = %d, want 8", s.TotalWeight())
	}
}

func TestSnapshotFingerprint(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 4)
	a := g.Snapshot()
	b := g.Snapshot()
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("identical graphs fingerprint differently: %x vs %x", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == 0 {
		t.Error("zero fingerprint")
	}

	g.Edges[1].W = 5
	c := g.Snapshot()
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("weight change did not change fingerprint")
	}

	// Same edges, different vertex count.
	h := &Graph{N: 4, Edges: append([]Edge(nil), a.Edges()...)}
	if h.Snapshot().Fingerprint() == a.Fingerprint() {
		t.Error("vertex-count change did not change fingerprint")
	}
}

func TestSnapshotGraphView(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	s := g.Snapshot()
	v := s.Graph()
	if v.N != 5 || v.M() != 2 {
		t.Fatalf("view shape: n=%d m=%d", v.N, v.M())
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}
