package graph

import "sync"

// Remap compacts arbitrary labels drawn from [0, bound) into dense ids
// [0, Len()), assigned in first-appearance order — exactly the behavior
// of the map[int32]int32 idiom it replaces in the result-publication
// passes of the CC and min-cut algorithms, but as a single []int32
// scatter table: one array read and (on first sight) one write per
// lookup, no hashing, no per-entry allocation.
type Remap struct {
	table []int32
	next  int32
}

// remapPool recycles Remap tables across queries; the result passes of
// concurrent service queries each check one out.
var remapPool = sync.Pool{New: func() any { return &Remap{} }}

// GetRemap returns a pooled Remap ready for labels in [0, bound).
func GetRemap(bound int) *Remap {
	r := remapPool.Get().(*Remap)
	r.Reset(bound)
	return r
}

// PutRemap returns a Remap to the pool. The caller must not use it
// afterwards.
func PutRemap(r *Remap) { remapPool.Put(r) }

// Reset prepares the table for labels in [0, bound), reusing the backing
// array when capacity allows.
func (r *Remap) Reset(bound int) {
	if cap(r.table) >= bound {
		r.table = r.table[:bound]
	} else {
		r.table = make([]int32, bound)
	}
	for i := range r.table {
		r.table[i] = -1
	}
	r.next = 0
}

// Of returns the dense id of label l, assigning the next free id on
// first sight.
func (r *Remap) Of(l int32) int32 {
	if id := r.table[l]; id >= 0 {
		return id
	}
	id := r.next
	r.table[l] = id
	r.next++
	return id
}

// Len returns the number of distinct labels seen since Reset.
func (r *Remap) Len() int { return int(r.next) }
