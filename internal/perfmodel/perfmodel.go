// Package perfmodel implements the paper's constant-factor BSP
// performance model (§5, "Performance Model"): measured execution time is
// explained as a·(BSP computation) + b·(communication volume)·log p +
// c·(supersteps) + d, where the log p factor accounts for MPI collective
// implementation overhead (Hoefler et al.). Constants are fitted with
// linear least squares over measured runs; the fitted model produces the
// prediction lines of Figures 1 and 6.
//
// It also records the closed-form asymptotic bounds of Table 1 so the
// bench harness can print measured-versus-predicted growth side by side.
package perfmodel

import (
	"errors"
	"math"
)

// Sample is one measured run.
type Sample struct {
	Comp       float64 // measured computation (max local operations)
	Volume     float64 // BSP communication volume in words
	Supersteps float64
	P          float64 // processors
	Time       float64 // measured wall time in seconds
}

// Model holds fitted constants for
// T = A·Comp + B·Volume·log2(P) + C·Supersteps + D.
type Model struct {
	A, B, C, D float64
}

// features maps a sample to its regressor vector.
func features(s Sample) [4]float64 {
	lp := math.Log2(s.P)
	if lp < 1 {
		lp = 1
	}
	return [4]float64{s.Comp, s.Volume * lp, s.Supersteps, 1}
}

// Fit computes the least-squares constants over the samples by solving
// the 4×4 normal equations with Gaussian elimination. Negative fitted
// cost constants are clamped to zero (costs cannot be negative). At least
// 4 samples are required.
func Fit(samples []Sample) (*Model, error) {
	if len(samples) < 4 {
		return nil, errors.New("perfmodel: need at least 4 samples")
	}
	var ata [4][4]float64
	var atb [4]float64
	for _, s := range samples {
		f := features(s)
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				ata[i][j] += f[i] * f[j]
			}
			atb[i] += f[i] * s.Time
		}
	}
	x, err := solve4(ata, atb)
	if err != nil {
		return nil, err
	}
	m := &Model{A: x[0], B: x[1], C: x[2], D: x[3]}
	clamped := false
	if m.A < 0 {
		m.A, clamped = 0, true
	}
	if m.B < 0 {
		m.B, clamped = 0, true
	}
	if m.C < 0 {
		m.C, clamped = 0, true
	}
	if clamped || m.D < 0 {
		// Refit the intercept to the residuals of the clamped model so
		// predictions stay centered.
		var sum float64
		for _, s := range samples {
			f := features(s)
			sum += s.Time - m.A*f[0] - m.B*f[1] - m.C*f[2]
		}
		m.D = sum / float64(len(samples))
	}
	if m.D < 0 {
		m.D = 0
	}
	return m, nil
}

// solve4 solves a 4×4 linear system with partial pivoting.
func solve4(a [4][4]float64, b [4]float64) ([4]float64, error) {
	var x [4]float64
	for col := 0; col < 4; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 4; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-18 {
			return x, errors.New("perfmodel: singular system (degenerate samples)")
		}
		a[col], a[piv] = a[piv], a[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < 4; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	for r := 3; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 4; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, nil
}

// FitRobust fits the full four-constant model and falls back to the
// reduced two-constant model T = A·Comp + D when the full fit is
// ill-conditioned (strong collinearity across a small sweep — e.g. a
// p-sweep at fixed n keeps volume and supersteps nearly constant, making
// the normal equations useless). The reduced fit is a plain simple
// linear regression and always well-behaved.
func FitRobust(samples []Sample) (*Model, error) {
	full, errFull := Fit(samples)
	red, errRed := fitReduced(samples)
	switch {
	case errFull != nil && errRed != nil:
		return nil, errFull
	case errFull != nil:
		return red, nil
	case errRed != nil:
		return full, nil
	}
	if full.R2(samples) >= red.R2(samples) {
		return full, nil
	}
	return red, nil
}

// fitReduced solves T = A·Comp + D by simple linear regression.
func fitReduced(samples []Sample) (*Model, error) {
	if len(samples) < 2 {
		return nil, errors.New("perfmodel: need at least 2 samples")
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(samples))
	for _, s := range samples {
		sx += s.Comp
		sy += s.Time
		sxx += s.Comp * s.Comp
		sxy += s.Comp * s.Time
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-18 {
		return nil, errors.New("perfmodel: degenerate reduced fit")
	}
	a := (n*sxy - sx*sy) / den
	d := (sy - a*sx) / n
	if a < 0 {
		a = 0
		d = sy / n
	}
	if d < 0 {
		d = 0
	}
	return &Model{A: a, D: d}, nil
}

// Predict returns the model's time estimate for a run's cost profile.
func (m *Model) Predict(s Sample) float64 {
	f := features(s)
	return m.A*f[0] + m.B*f[1] + m.C*f[2] + m.D*f[3]
}

// R2 returns the coefficient of determination of the model over samples.
func (m *Model) R2(samples []Sample) float64 {
	var mean float64
	for _, s := range samples {
		mean += s.Time
	}
	mean /= float64(len(samples))
	var ssRes, ssTot float64
	for _, s := range samples {
		d := s.Time - m.Predict(s)
		ssRes += d * d
		t := s.Time - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return 1
	}
	return 1 - ssRes/ssTot
}

// Table 1 bound formulas (up to constants). All logarithms are natural.

func lg(x float64) float64 {
	if x < 2 {
		x = 2
	}
	return math.Log(x)
}

// MCSupersteps is this paper's superstep bound O(log(pm/n²)).
func MCSupersteps(n, m, p float64) float64 {
	v := lg(p * m / (n * n))
	if v < 1 {
		v = 1
	}
	return v
}

// MCComputation is this paper's computation bound O(n²log³n / p).
func MCComputation(n, p float64) float64 {
	l := lg(n)
	return n * n * l * l * l / p
}

// MCVolume is this paper's communication volume bound
// O(n²·log²n·log p / p).
func MCVolume(n, p float64) float64 {
	l := lg(n)
	return n * n * l * l * lg(p) / p
}

// MCCacheMisses is this paper's cache miss bound O(n²log³n / (Bp)).
func MCCacheMisses(n, p, b float64) float64 {
	return MCComputation(n, p) / b
}

// PrevBSPSupersteps is the previous BSP algorithm's O(log n · log² p).
func PrevBSPSupersteps(n, p float64) float64 {
	return lg(n) * lg(p) * lg(p)
}

// PrevBSPComputation is the previous BSP algorithm's
// O(n²·log³n·log p / p).
func PrevBSPComputation(n, p float64) float64 {
	return MCComputation(n, p) * lg(p)
}

// PrevBSPVolume is the previous BSP algorithm's O(n²·log²n·log²p / p).
func PrevBSPVolume(n, p float64) float64 {
	return MCVolume(n, p) * lg(p)
}

// KSSeqCacheMisses is CO Karger–Stein's sequential O(n²log³n / B).
func KSSeqCacheMisses(n, b float64) float64 {
	return MCCacheMisses(n, 1, b)
}

// CCVolume is the CC algorithm's O(n^(1+ε)) volume bound.
func CCVolume(n, epsilon float64) float64 {
	return math.Pow(n, 1+epsilon)
}

// CCComputation is the CC algorithm's O(m/p + n^(1+ε)) bound.
func CCComputation(n, m, p, epsilon float64) float64 {
	return m/p + CCVolume(n, epsilon)
}
