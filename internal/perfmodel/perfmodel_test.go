package perfmodel

import (
	"math"
	"testing"
)

func synth(a, b, c, d float64, n int) []Sample {
	var out []Sample
	for i := 0; i < n; i++ {
		s := Sample{
			Comp:       float64(1000 * (i + 1)),
			Volume:     float64(300 * (i%5 + 1)),
			Supersteps: float64(4 + i%7),
			P:          float64(int(1) << (i % 5)),
		}
		f := features(s)
		s.Time = a*f[0] + b*f[1] + c*f[2] + d
		out = append(out, s)
	}
	return out
}

func TestFitRecoversExactConstants(t *testing.T) {
	a, b, c, d := 2e-8, 5e-7, 1e-4, 0.01
	samples := synth(a, b, c, d, 24)
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"A": {m.A, a}, "B": {m.B, b}, "C": {m.C, c}, "D": {m.D, d},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-9+0.01*pair[1] {
			t.Errorf("%s = %v, want %v", name, pair[0], pair[1])
		}
	}
	if r2 := m.R2(samples); r2 < 0.999 {
		t.Errorf("R2 = %v on noiseless data", r2)
	}
}

func TestFitWithNoise(t *testing.T) {
	// Constants chosen so each term contributes comparably to the total,
	// keeping the signal well above the 3% noise.
	samples := synth(1e-5, 2e-6, 1e-3, 0.02, 40)
	// Perturb deterministically by ±3%.
	for i := range samples {
		f := 1 + 0.03*math.Sin(float64(i))
		samples[i].Time *= f
	}
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := m.R2(samples); r2 < 0.95 {
		t.Errorf("R2 = %v with 3%% noise", r2)
	}
}

func TestFitRejectsTooFew(t *testing.T) {
	if _, err := Fit(synth(1, 1, 1, 1, 3)); err == nil {
		t.Error("Fit accepted 3 samples")
	}
}

func TestFitRejectsDegenerate(t *testing.T) {
	// All-identical samples make the normal equations singular.
	s := Sample{Comp: 1, Volume: 1, Supersteps: 1, P: 2, Time: 1}
	if _, err := Fit([]Sample{s, s, s, s, s}); err == nil {
		t.Error("Fit accepted degenerate samples")
	}
}

func TestPredictNonNegativeClamp(t *testing.T) {
	m := &Model{A: 1e-9, B: 0, C: 0, D: 0.5}
	got := m.Predict(Sample{Comp: 1e6, Volume: 10, Supersteps: 2, P: 4})
	if got < 0.5 {
		t.Errorf("Predict = %v", got)
	}
}

func TestTable1BoundsShape(t *testing.T) {
	// Our MC bounds must be strictly below the previous BSP algorithm's
	// (by the log p factor) for p > 2.
	n, m, p := 10000.0, 320000.0, 64.0
	if MCComputation(n, p) >= PrevBSPComputation(n, p) {
		t.Error("computation bound not improved")
	}
	if MCVolume(n, p) >= PrevBSPVolume(n, p) {
		t.Error("volume bound not improved")
	}
	if MCSupersteps(n, m, p) >= PrevBSPSupersteps(n, p) {
		t.Error("superstep bound not improved")
	}
	// Superstep bound grows with p (log(pm/n²)) once pm/n² is above the
	// clamp region, but stays tiny.
	if MCSupersteps(n, m, 4096) <= MCSupersteps(n, m, 1024) {
		t.Error("superstep bound not monotone in p")
	}
	// Perfect strong scaling of computation: double p halves the bound.
	r := MCComputation(n, p) / MCComputation(n, 2*p)
	if math.Abs(r-2) > 1e-9 {
		t.Errorf("computation scaling ratio = %v", r)
	}
	// Cache misses = computation / B.
	if MCCacheMisses(n, p, 8) != MCComputation(n, p)/8 {
		t.Error("cache miss bound inconsistent")
	}
	if KSSeqCacheMisses(n, 8) != MCCacheMisses(n, 1, 8) {
		t.Error("KS sequential bound inconsistent")
	}
	// CC bounds: near-linear volume.
	if CCVolume(n, 0.5) >= n*n {
		t.Error("CC volume bound not subquadratic")
	}
	if CCComputation(n, m, p, 0.5) < CCVolume(n, 0.5) {
		t.Error("CC computation below its volume term")
	}
}

func TestFitRobustFallsBackOnCollinear(t *testing.T) {
	// A p-sweep at fixed n: volume and supersteps ~constant, comp halves.
	// The full fit is ill-conditioned; the robust fit must still produce
	// a usable compute-dominated model.
	samples := []Sample{
		{Comp: 8e6, Volume: 1000, Supersteps: 9, P: 1, Time: 8.1},
		{Comp: 4e6, Volume: 1020, Supersteps: 26, P: 2, Time: 4.2},
		{Comp: 2e6, Volume: 1015, Supersteps: 26, P: 4, Time: 2.2},
		{Comp: 1e6, Volume: 1030, Supersteps: 26, P: 8, Time: 1.3},
	}
	m, err := FitRobust(samples)
	if err != nil {
		t.Fatal(err)
	}
	if r2 := m.R2(samples); r2 < 0.9 {
		t.Errorf("robust fit R2 = %v", r2)
	}
	// Prediction at p=2 should be near 4.2s.
	got := m.Predict(samples[1])
	if math.Abs(got-4.2) > 1.0 {
		t.Errorf("prediction %v, want ~4.2", got)
	}
}

func TestFitRobustPrefersFullModel(t *testing.T) {
	samples := synth(1e-5, 2e-6, 1e-3, 0.02, 24)
	m, err := FitRobust(samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.B == 0 && m.C == 0 {
		t.Error("robust fit discarded the full model on well-conditioned data")
	}
}
