package perfmodel

// Window is a bounded FIFO of measured samples, the buffer a live
// planner refits its per-kernel model from: new executions overwrite the
// oldest once the window is full, so the fit tracks the current machine
// and workload rather than startup conditions.
type Window struct {
	buf  []Sample
	next int
	full bool
}

// NewWindow returns a window holding at most capacity samples
// (minimum 4 — below that no model can be fitted at all).
func NewWindow(capacity int) *Window {
	if capacity < 4 {
		capacity = 4
	}
	return &Window{buf: make([]Sample, 0, capacity)}
}

// Add appends a sample, evicting the oldest when full.
func (w *Window) Add(s Sample) {
	if !w.full && len(w.buf) < cap(w.buf) {
		w.buf = append(w.buf, s)
		if len(w.buf) == cap(w.buf) {
			w.full = true
		}
		return
	}
	w.buf[w.next] = s
	w.next = (w.next + 1) % len(w.buf)
}

// Len reports the number of held samples.
func (w *Window) Len() int { return len(w.buf) }

// Samples returns a copy of the held samples (order is not meaningful;
// the fitters are order-invariant).
func (w *Window) Samples() []Sample {
	return append([]Sample(nil), w.buf...)
}
