package sort

import (
	"math/rand"
	"sort"
	"testing"
)

// genCases builds the adversarial key distributions the radix sort must
// survive: random, duplicate-heavy, already sorted, reversed, all-equal,
// narrow ranges (exercising the digit-skip path), and extreme values.
func genCases(r *rand.Rand) map[string][]KV {
	random := make([]KV, 4097)
	for i := range random {
		random[i] = KV{K: r.Uint64(), V: r.Uint64()}
	}
	dupHeavy := make([]KV, 5000)
	for i := range dupHeavy {
		// ~16 distinct keys: every key is a long run of parallel edges.
		dupHeavy[i] = KV{K: uint64(r.Intn(16)) << 32, V: uint64(r.Intn(3))}
	}
	edges := make([]KV, 3000)
	for i := range edges {
		u := int32(r.Intn(512))
		v := int32(r.Intn(512))
		if u > v {
			u, v = v, u
		}
		w := uint64(r.Intn(2)) // 0/1 weights
		if i%7 == 0 {
			w = ^uint64(0) >> 1 // near-max weights
		}
		edges[i] = KV{K: Key(u, v), V: w}
	}
	sorted := make([]KV, 300)
	for i := range sorted {
		sorted[i] = KV{K: uint64(i * 3), V: uint64(i)}
	}
	reversed := make([]KV, 300)
	for i := range reversed {
		reversed[i] = KV{K: uint64(1 << 40), V: 1}
		reversed[i].K -= uint64(i)
	}
	equal := make([]KV, 200)
	for i := range equal {
		equal[i] = KV{K: 42, V: uint64(i)}
	}
	return map[string][]KV{
		"empty":     nil,
		"single":    {{K: 9, V: 9}},
		"tiny":      {{K: 3, V: 1}, {K: 1, V: 2}, {K: 2, V: 3}, {K: 1, V: 4}},
		"random":    random,
		"dup-heavy": dupHeavy,
		"edges":     edges,
		"sorted":    sorted,
		"reversed":  reversed,
		"all-equal": equal,
	}
}

func oracleSort(kvs []KV) []KV {
	out := append([]KV(nil), kvs...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].K < out[j].K })
	return out
}

func oracleCombine(kvs []KV) []KV {
	s := oracleSort(kvs)
	var out []KV
	for _, kv := range s {
		if len(out) > 0 && out[len(out)-1].K == kv.K {
			out[len(out)-1].V += kv.V
			continue
		}
		out = append(out, kv)
	}
	return out
}

func TestPairsMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for name, in := range genCases(r) {
		t.Run(name, func(t *testing.T) {
			got := append([]KV(nil), in...)
			scratch := Borrow(len(got))
			Pairs(got, scratch)
			Release(scratch)
			want := oracleSort(in)
			if len(got) != len(want) {
				t.Fatalf("length %d, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("at %d: got %v, want %v (stable order violated or missort)", i, got[i], want[i])
				}
			}
		})
	}
}

func TestCombineMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for name, in := range genCases(r) {
		t.Run(name, func(t *testing.T) {
			got := append([]KV(nil), in...)
			scratch := Borrow(len(got))
			res := Combine(got, scratch)
			Release(scratch)
			want := oracleCombine(in)
			if len(res) != len(want) {
				t.Fatalf("length %d, want %d", len(res), len(want))
			}
			for i := range res {
				if res[i] != want[i] {
					t.Fatalf("at %d: got %v, want %v", i, res[i], want[i])
				}
			}
		})
	}
}

// TestPairsRandomSweep fuzzes sizes around the insertion cutoff and the
// digit-skip boundaries.
func TestPairsRandomSweep(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(200)
		maxK := uint64(1) << uint(1+r.Intn(63))
		in := make([]KV, n)
		for i := range in {
			in[i] = KV{K: r.Uint64() % maxK, V: uint64(i)}
		}
		got := append([]KV(nil), in...)
		scratch := Borrow(n)
		Pairs(got, scratch)
		Release(scratch)
		want := oracleSort(in)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (n=%d maxK=%d) at %d: got %v want %v", trial, n, maxK, i, got[i], want[i])
			}
		}
	}
}

func TestUint64sMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		n := r.Intn(300)
		in := make([]uint64, n)
		for i := range in {
			in[i] = r.Uint64() >> uint(r.Intn(60))
		}
		got := append([]uint64(nil), in...)
		scratch := BorrowWords(n)
		Uint64s(got, scratch)
		ReleaseWords(scratch)
		want := append([]uint64(nil), in...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d at %d: got %d want %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, uv := range [][2]int32{{0, 0}, {1, 2}, {1<<31 - 1, 1<<31 - 1}, {7, 1 << 30}} {
		k := Key(uv[0], uv[1])
		if KeyU(k) != uv[0] || KeyV(k) != uv[1] {
			t.Fatalf("round trip (%d,%d) -> %d -> (%d,%d)", uv[0], uv[1], k, KeyU(k), KeyV(k))
		}
	}
	// Packed order must equal lexicographic (u, v) order.
	if !(Key(1, 5) < Key(2, 0)) || !(Key(3, 4) < Key(3, 5)) {
		t.Fatal("key order is not lexicographic")
	}
}
