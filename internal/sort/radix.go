// Package sort provides the cache-efficient sequential sorting kernels
// underneath the BSP layer: a stable LSD radix sort on 64-bit keys with
// an attached 64-bit payload word, and a fused sort+combine pass that
// merges equal keys by summing payloads. Edges sort through it as packed
// (U<<32|V, W) pairs — the packed key order equals the (U, V)
// lexicographic order the distributed algorithms need, because vertex ids
// are non-negative int32s.
//
// Unlike sort.Slice, the passes are branch-free counting scans with no
// interface dispatch and no per-comparison closure calls: 8n key reads
// for the histogram plus one scatter pass per non-trivial byte. Digits
// shared by every key (the common case — packed keys are bounded by the
// vertex count) are detected from the histogram and skipped, so sorting
// m edges of an n-vertex graph costs ⌈log₂₅₆ n²⌉ ≈ 4 scatter passes, not
// 8. All scratch is pooled: steady-state sorts allocate nothing.
package sort

import "sync"

// KV is one sort element: a 64-bit key with a 64-bit payload riding
// along. For edges, K packs the normalized endpoints and V carries the
// weight.
type KV struct {
	K, V uint64
}

// Key packs a normalized (u ≤ v) edge endpoint pair into a radix key
// whose uint64 order is the (u, v) lexicographic order.
func Key(u, v int32) uint64 { return uint64(uint32(u))<<32 | uint64(uint32(v)) }

// KeyU and KeyV unpack a Key.
func KeyU(k uint64) int32 { return int32(uint32(k >> 32)) }
func KeyV(k uint64) int32 { return int32(uint32(k)) }

const (
	radixBuckets = 256
	radixDigits  = 8
	// insertionCutoff is the size below which a binary-insertion-style
	// pass beats the fixed histogram cost of the radix passes.
	insertionCutoff = 48
)

// insertionKV is a stable insertion sort by K for tiny inputs.
func insertionKV(kvs []KV) {
	for i := 1; i < len(kvs); i++ {
		x := kvs[i]
		j := i - 1
		for j >= 0 && kvs[j].K > x.K {
			kvs[j+1] = kvs[j]
			j--
		}
		kvs[j+1] = x
	}
}

// sortInto runs the LSD passes and returns the slice (kvs or scratch)
// holding the sorted data. len(scratch) must be ≥ len(kvs).
func sortInto(kvs, scratch []KV) []KV {
	n := len(kvs)
	if n < insertionCutoff {
		insertionKV(kvs)
		return kvs
	}
	scratch = scratch[:n]
	// One pass builds all eight digit histograms.
	var count [radixDigits][radixBuckets]int
	for i := range kvs {
		k := kvs[i].K
		count[0][byte(k)]++
		count[1][byte(k>>8)]++
		count[2][byte(k>>16)]++
		count[3][byte(k>>24)]++
		count[4][byte(k>>32)]++
		count[5][byte(k>>40)]++
		count[6][byte(k>>48)]++
		count[7][byte(k>>56)]++
	}
	src, dst := kvs, scratch
	for d := 0; d < radixDigits; d++ {
		c := &count[d]
		shift := uint(8 * d)
		// A digit every key agrees on needs no pass; src[0]'s bucket then
		// holds all n elements.
		if c[byte(src[0].K>>shift)] == n {
			continue
		}
		sum := 0
		for b := 0; b < radixBuckets; b++ {
			c[b], sum = sum, sum+c[b]
		}
		for i := range src {
			b := byte(src[i].K >> shift)
			dst[c[b]] = src[i]
			c[b]++
		}
		src, dst = dst, src
	}
	return src
}

// Pairs stable-sorts kvs ascending by K in place, using scratch (length ≥
// len(kvs)) as the ping-pong buffer.
func Pairs(kvs, scratch []KV) {
	if len(kvs) == 0 {
		return
	}
	res := sortInto(kvs, scratch)
	if &res[0] != &kvs[0] {
		copy(kvs, res)
	}
}

// Combine sorts kvs by K and merges runs of equal keys by summing their
// V payloads, returning the shortened slice aliasing kvs. The merge is
// fused with the radix sort's final data movement: when the last scatter
// pass lands in the scratch buffer, merging happens during the copy back
// into kvs, so combining costs no extra pass over the data.
func Combine(kvs, scratch []KV) []KV {
	if len(kvs) == 0 {
		return kvs
	}
	res := sortInto(kvs, scratch)
	out := kvs[:1]
	out[0] = res[0]
	for _, kv := range res[1:] {
		if last := &out[len(out)-1]; last.K == kv.K {
			last.V += kv.V
			continue
		}
		out = append(out, kv)
	}
	return out
}

// Uint64s sorts keys ascending in place using scratch (length ≥
// len(keys)) as the ping-pong buffer. It is Pairs for payload-free keys.
func Uint64s(keys, scratch []uint64) {
	n := len(keys)
	if n == 0 {
		return
	}
	if n < insertionCutoff {
		for i := 1; i < n; i++ {
			x := keys[i]
			j := i - 1
			for j >= 0 && keys[j] > x {
				keys[j+1] = keys[j]
				j--
			}
			keys[j+1] = x
		}
		return
	}
	scratch = scratch[:n]
	var count [radixDigits][radixBuckets]int
	for _, k := range keys {
		count[0][byte(k)]++
		count[1][byte(k>>8)]++
		count[2][byte(k>>16)]++
		count[3][byte(k>>24)]++
		count[4][byte(k>>32)]++
		count[5][byte(k>>40)]++
		count[6][byte(k>>48)]++
		count[7][byte(k>>56)]++
	}
	src, dst := keys, scratch
	for d := 0; d < radixDigits; d++ {
		c := &count[d]
		shift := uint(8 * d)
		if c[byte(src[0]>>shift)] == n {
			continue
		}
		sum := 0
		for b := 0; b < radixBuckets; b++ {
			c[b], sum = sum, sum+c[b]
		}
		for _, k := range src {
			b := byte(k >> shift)
			dst[c[b]] = k
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
}

// kvPool and wordPool recycle sort scratch across calls and goroutines.
// Buffers whose capacity turns out too small for a request are simply
// dropped to the collector.
var (
	kvPool   sync.Pool // *[]KV
	wordPool sync.Pool // *[]uint64
)

// Borrow returns a KV slice of length n from the scratch pool.
func Borrow(n int) []KV {
	if v := kvPool.Get(); v != nil {
		b := *(v.(*[]KV))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]KV, n)
}

// Release returns a Borrowed slice to the pool. The caller must not use
// it afterwards.
func Release(b []KV) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	kvPool.Put(&b)
}

// BorrowWords returns a uint64 slice of length n from the scratch pool.
func BorrowWords(n int) []uint64 {
	if v := wordPool.Get(); v != nil {
		b := *(v.(*[]uint64))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]uint64, n)
}

// ReleaseWords returns a BorrowWords slice to the pool.
func ReleaseWords(b []uint64) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	wordPool.Put(&b)
}
