package flow

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
)

func TestMaxFlowPath(t *testing.T) {
	// Path 0-1-2 with capacities 5, 3: max flow 0->2 is 3.
	g := graph.New(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 3)
	nw := NewNetwork(g)
	if f := nw.MaxFlow(0, 2); f != 3 {
		t.Errorf("flow = %d, want 3", f)
	}
}

func TestMaxFlowParallelPaths(t *testing.T) {
	// Two disjoint 0->3 paths of bottlenecks 2 and 4.
	g := graph.New(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 7)
	g.AddEdge(0, 2, 9)
	g.AddEdge(2, 3, 4)
	nw := NewNetwork(g)
	if f := nw.MaxFlow(0, 3); f != 6 {
		t.Errorf("flow = %d, want 6", f)
	}
}

func TestMaxFlowSameSourceSink(t *testing.T) {
	g := gen.Cycle(5, 1)
	nw := NewNetwork(g)
	if f := nw.MaxFlow(2, 2); f != 0 {
		t.Errorf("s==t flow = %d", f)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 5)
	g.AddEdge(2, 3, 5)
	nw := NewNetwork(g)
	if f := nw.MaxFlow(0, 3); f != 0 {
		t.Errorf("cross-component flow = %d", f)
	}
}

func TestMaxFlowEqualsSTCut(t *testing.T) {
	// Max-flow min-cut duality: the residual source side must evaluate to
	// the flow value.
	err := quick.Check(func(seed uint64) bool {
		g := gen.ErdosRenyiM(20, 70, seed, gen.Config{MaxWeight: 6})
		nw := NewNetwork(g)
		f := nw.MaxFlow(0, 19)
		side := nw.MinCutSide(0)
		if side[19] {
			return f == 0 || !g.IsConnected()
		}
		return g.CutValue(side) == f
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Error(err)
	}
}

func TestGlobalMinCutMatchesStoerWagner(t *testing.T) {
	for seed := uint64(60); seed < 66; seed++ {
		g := gen.ErdosRenyiM(24, 120, seed, gen.Config{MaxWeight: 4})
		if !g.IsConnected() {
			continue
		}
		want := mincut.StoerWagner(g).Value
		got, side, flows := GlobalMinCut(g)
		if got != want {
			t.Errorf("seed %d: flow-based cut %d vs SW %d", seed, got, want)
		}
		if g.CutValue(side) != got {
			t.Error("side does not certify value")
		}
		if flows != g.N-1 {
			t.Errorf("flows = %d, want n-1 = %d", flows, g.N-1)
		}
	}
}

func TestGlobalMinCutKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want uint64
	}{
		{"cycle", gen.Cycle(12, 3), 6},
		{"dumbbell", gen.Dumbbell(6, 4, 1), 1},
		{"twocliques", gen.TwoCliques(6, 2, 5, 1), 2},
	}
	for _, c := range cases {
		got, side, _ := GlobalMinCut(c.g)
		if got != c.want || c.g.CutValue(side) != got {
			t.Errorf("%s: %d, want %d", c.name, got, c.want)
		}
	}
}

func TestGlobalMinCutTrivial(t *testing.T) {
	if v, _, f := GlobalMinCut(graph.New(1)); v != 0 || f != 0 {
		t.Error("single vertex")
	}
	g := graph.New(4)
	g.AddEdge(0, 1, 2)
	if v, side, _ := GlobalMinCut(g); v != 0 || side[3] {
		t.Error("disconnected graph should report a zero component cut")
	}
}
