// Package flow implements maximum s-t flow (Dinic's algorithm) and the
// minimum-cut-via-maximum-flows baseline the paper's related work (§6)
// argues against: the smallest minimum s-t cut over all (s,t) pairs is a
// global minimum cut, but it takes n-1 maximum-flow computations with a
// fixed source — an Ω(mn) work bound, compared to the paper's
// near-linear-work approximation and O(m·polylog + n^{1+ε}) machinery.
// It exists as a correctness cross-check and as the work-blowup ablation.
package flow

import (
	"math"

	"repro/internal/graph"
)

// arc is one directed residual arc.
type arc struct {
	to  int32
	rev int32 // index of the reverse arc in adj[to]
	cap uint64
}

// Network is a flow network built from an undirected weighted graph:
// each undirected edge becomes a pair of arcs, each carrying the full
// edge capacity (the standard undirected-flow reduction).
type Network struct {
	n   int
	adj [][]arc
}

// NewNetwork builds the residual network of g.
func NewNetwork(g *graph.Graph) *Network {
	nw := &Network{n: g.N, adj: make([][]arc, g.N)}
	for _, e := range g.Edges {
		nw.addUndirected(e.U, e.V, e.W)
	}
	return nw
}

func (nw *Network) addUndirected(u, v int32, cap uint64) {
	iu := int32(len(nw.adj[u]))
	iv := int32(len(nw.adj[v]))
	nw.adj[u] = append(nw.adj[u], arc{to: v, rev: iv, cap: cap})
	nw.adj[v] = append(nw.adj[v], arc{to: u, rev: iu, cap: cap})
}

// reset restores all arc capacities from g (undoing previous flows).
func (nw *Network) reset(g *graph.Graph) {
	for i := range nw.adj {
		nw.adj[i] = nw.adj[i][:0]
	}
	for _, e := range g.Edges {
		nw.addUndirected(e.U, e.V, e.W)
	}
}

// MaxFlow computes the maximum s-t flow value with Dinic's algorithm:
// O(n²m) worst case, far better in practice. The network's residual
// capacities are consumed; use reset or a fresh network between calls.
func (nw *Network) MaxFlow(s, t int32) uint64 {
	if s == t {
		return 0
	}
	var total uint64
	level := make([]int32, nw.n)
	iter := make([]int, nw.n)
	queue := make([]int32, 0, nw.n)
	for {
		// BFS level graph.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range nw.adj[v] {
				if a.cap > 0 && level[a.to] < 0 {
					level[a.to] = level[v] + 1
					queue = append(queue, a.to)
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		// Blocking flow by DFS with iteration pointers.
		for {
			f := nw.augment(s, t, math.MaxUint64, level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
}

func (nw *Network) augment(v, t int32, limit uint64, level []int32, iter []int) uint64 {
	if v == t {
		return limit
	}
	for ; iter[v] < len(nw.adj[v]); iter[v]++ {
		a := &nw.adj[v][iter[v]]
		if a.cap == 0 || level[a.to] != level[v]+1 {
			continue
		}
		pushed := limit
		if a.cap < pushed {
			pushed = a.cap
		}
		got := nw.augment(a.to, t, pushed, level, iter)
		if got == 0 {
			continue
		}
		a.cap -= got
		nw.adj[a.to][a.rev].cap += got
		return got
	}
	return 0
}

// MinCutSide returns the source side of a minimum s-t cut after MaxFlow
// has been run: the vertices reachable from s in the residual network.
func (nw *Network) MinCutSide(s int32) []bool {
	side := make([]bool, nw.n)
	side[s] = true
	stack := []int32{s}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, a := range nw.adj[v] {
			if a.cap > 0 && !side[a.to] {
				side[a.to] = true
				stack = append(stack, a.to)
			}
		}
	}
	return side
}

// GlobalMinCut computes the exact global minimum cut via n-1 maximum
// s-t flows with fixed source 0 — deterministic and correct, but Ω(mn)
// work (§6): the baseline the sampling-based algorithms beat. Returns the
// value, one side of the best cut, and the number of flow computations.
func GlobalMinCut(g *graph.Graph) (uint64, []bool, int) {
	n := g.N
	if n < 2 {
		return 0, make([]bool, n), 0
	}
	if !g.IsConnected() {
		return 0, g.ComponentOf(0), 0
	}
	nw := NewNetwork(g)
	best := uint64(math.MaxUint64)
	var bestSide []bool
	flows := 0
	for t := int32(1); int(t) < n; t++ {
		nw.reset(g)
		flows++
		v := nw.MaxFlow(0, t)
		if v < best {
			best = v
			bestSide = nw.MinCutSide(0)
		}
	}
	return best, bestSide, flows
}
