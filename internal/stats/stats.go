// Package stats provides the statistical machinery of the paper's
// methodology (§5): medians over repeated executions and nonparametric
// bootstrap confidence intervals for the median, used to decide when
// enough measurements have been collected (the artifact iterates until
// the 95% CI is within 5% of the reported median).
package stats

import (
	"errors"
	"math"
	"sort"

	"repro/internal/rng"
)

// Median returns the median of xs (mean of the middle two for even
// lengths). It panics on empty input.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: mean of empty slice")
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// CI is a two-sided confidence interval.
type CI struct {
	Lo, Hi float64
}

// Width returns the CI width relative to center (0 when center is 0).
func (c CI) RelativeWidth(center float64) float64 {
	if center == 0 {
		return 0
	}
	return (c.Hi - c.Lo) / math.Abs(center)
}

// BootstrapMedianCI estimates a confidence interval for the median of xs
// at the given level (e.g. 0.95) using `resamples` bootstrap resamples
// drawn from st. Needs at least 2 observations.
func BootstrapMedianCI(xs []float64, level float64, resamples int, st *rng.Stream) (CI, error) {
	if len(xs) < 2 {
		return CI{}, errors.New("stats: need >= 2 observations")
	}
	if level <= 0 || level >= 1 {
		return CI{}, errors.New("stats: level must be in (0,1)")
	}
	if resamples < 10 {
		resamples = 1000
	}
	meds := make([]float64, resamples)
	buf := make([]float64, len(xs))
	for r := range meds {
		for i := range buf {
			buf[i] = xs[st.Intn(len(xs))]
		}
		meds[r] = Median(buf)
	}
	sort.Float64s(meds)
	alpha := (1 - level) / 2
	lo := int(alpha * float64(resamples))
	hi := int((1 - alpha) * float64(resamples))
	if hi >= resamples {
		hi = resamples - 1
	}
	return CI{Lo: meds[lo], Hi: meds[hi]}, nil
}

// MeasureUntilStable repeatedly invokes measure and returns the median
// once the bootstrap CI at `level` is within relWidth of the median, or
// after maxRuns measurements — the artifact's measurement loop. At least
// minRuns measurements are always taken.
func MeasureUntilStable(measure func() float64, minRuns, maxRuns int, level, relWidth float64, st *rng.Stream) (median float64, runs int) {
	if minRuns < 3 {
		minRuns = 3
	}
	if maxRuns < minRuns {
		maxRuns = minRuns
	}
	var xs []float64
	for len(xs) < maxRuns {
		xs = append(xs, measure())
		if len(xs) < minRuns {
			continue
		}
		med := Median(xs)
		ci, err := BootstrapMedianCI(xs, level, 400, st)
		if err == nil && ci.RelativeWidth(med) <= relWidth {
			return med, len(xs)
		}
	}
	return Median(xs), len(xs)
}
