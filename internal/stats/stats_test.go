package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestMedian(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if m := Median([]float64{7}); m != 7 {
		t.Errorf("single median = %v", m)
	}
	// Input must not be reordered.
	xs := []float64{5, 1, 3}
	Median(xs)
	if xs[0] != 5 || xs[2] != 3 {
		t.Error("Median mutated its input")
	}
}

func TestMedianPanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Median(nil)
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("mean = %v", m)
	}
}

func TestBootstrapCICoversMedian(t *testing.T) {
	st := rng.New(5, 0, 0)
	// Samples around 10 with mild spread.
	var xs []float64
	for i := 0; i < 50; i++ {
		xs = append(xs, 10+math.Sin(float64(i))*0.5)
	}
	ci, err := BootstrapMedianCI(xs, 0.95, 1000, st)
	if err != nil {
		t.Fatal(err)
	}
	med := Median(xs)
	if med < ci.Lo || med > ci.Hi {
		t.Errorf("median %v outside CI [%v,%v]", med, ci.Lo, ci.Hi)
	}
	if ci.RelativeWidth(med) > 0.2 {
		t.Errorf("CI too wide: %v", ci.RelativeWidth(med))
	}
}

func TestBootstrapCIErrors(t *testing.T) {
	st := rng.New(1, 0, 0)
	if _, err := BootstrapMedianCI([]float64{1}, 0.95, 100, st); err == nil {
		t.Error("accepted single observation")
	}
	if _, err := BootstrapMedianCI([]float64{1, 2}, 1.5, 100, st); err == nil {
		t.Error("accepted level > 1")
	}
}

func TestMeasureUntilStableConvergesFast(t *testing.T) {
	st := rng.New(9, 0, 0)
	calls := 0
	med, runs := MeasureUntilStable(func() float64 {
		calls++
		return 5 // perfectly stable
	}, 3, 100, 0.95, 0.05, st)
	if med != 5 {
		t.Errorf("median = %v", med)
	}
	if runs != 3 || calls != 3 {
		t.Errorf("took %d runs (%d calls), want 3", runs, calls)
	}
}

func TestMeasureUntilStableCapsAtMax(t *testing.T) {
	st := rng.New(9, 0, 0)
	i := 0.0
	_, runs := MeasureUntilStable(func() float64 {
		i += 1
		return i * 100 // never stabilizes
	}, 3, 12, 0.95, 0.01, st)
	if runs != 12 {
		t.Errorf("runs = %d, want max 12", runs)
	}
}

func TestRelativeWidthZeroCenter(t *testing.T) {
	ci := CI{Lo: -1, Hi: 1}
	if ci.RelativeWidth(0) != 0 {
		t.Error("zero center should give 0")
	}
}
