#!/usr/bin/env bash
# bench_gate.sh — copy the committed BENCH_*.json baselines aside,
# re-run every benchmark suite (which overwrites those files in place),
# then let cmd/benchgate compare the fresh measurements against the
# saved copies. Exit 1 on a critical regression.
#
#   BENCHTIME=0.5s scripts/bench_gate.sh
#
# Run from the repo root on a clean checkout: the baselines are taken
# from the working tree, which in CI is the committed state.
set -euo pipefail

BASE=${BASE:-.benchgate/baseline}
BENCHTIME=${BENCHTIME:-0.5s}

files=(
  internal/service/BENCH_service.json
  internal/service/BENCH_planner.json
  internal/bsp/BENCH_bsp.json
  internal/kernels/BENCH_kernels.json
  internal/transport/BENCH_transport.json
  internal/shard/BENCH_fleet.json
)

rm -rf "$BASE"
found=0
for f in "${files[@]}"; do
  [ -f "$f" ] || continue
  mkdir -p "$BASE/$(dirname "$f")"
  cp "$f" "$BASE/$f"
  found=$((found + 1))
done
if [ "$found" -eq 0 ]; then
  echo "bench_gate: no committed BENCH baselines found; nothing to gate" >&2
  exit 1
fi
echo "bench_gate: saved $found baseline(s) under $BASE; re-running benches at -benchtime=$BENCHTIME"

go test -run='^$' -bench=. -benchmem -benchtime="$BENCHTIME" ./internal/bsp/
go test -run='^$' -bench=. -benchmem -benchtime="$BENCHTIME" ./internal/kernels/
go test -run='^$' -bench=. -benchmem -benchtime="$BENCHTIME" ./internal/service/
# Any matched benchmark makes the transport TestMain regenerate
# BENCH_transport.json with its full local/tcp × codec sweep at
# $BENCHTIME, so the named run is kept minimal.
go test -run='^$' -bench='ExchangeLocal/p=2/w=64$' -benchtime="$BENCHTIME" ./internal/transport/
# The fleet scorecard is a scripted scenario, not a timing loop: one
# iteration regenerates the deterministic counts.
go test -run='^$' -bench=. -benchtime=1x ./internal/shard/

go run ./cmd/benchgate -baseline "$BASE" -current .
