#!/usr/bin/env bash
# load_smoke.sh — the CI load job: build camcd + loadgen, replay the
# deterministic -quick traffic mix against (1) a single-process daemon
# and (2) a 3-process fleet (two -worker ranks forming one shard plus a
# -frontend router), and leave BENCH_load_single.json /
# BENCH_load_fleet.json behind as artifacts. Any transport or 5xx
# failure fails the script.
set -euo pipefail

SEED=${SEED:-42}
BIN=${BIN:-$(mktemp -d)}
LOG=${LOG:-$BIN}

go build -o "$BIN/camcd" ./cmd/camcd
go build -o "$BIN/loadgen" ./cmd/loadgen

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -fsS "$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "load_smoke: $1 never became healthy" >&2
  return 1
}

echo "=== load smoke 1/2: single-process daemon ==="
"$BIN/camcd" -addr=127.0.0.1:18491 >"$LOG/camcd-single.log" 2>&1 &
pids+=($!)
wait_healthy http://127.0.0.1:18491
"$BIN/loadgen" -target=http://127.0.0.1:18491 -quick -seed="$SEED" \
  -fault-frac=0.05 -out=BENCH_load_single.json
kill "${pids[0]}" 2>/dev/null || true

echo "=== load smoke 2/2: 3-process fleet (2 workers + frontend) ==="
MESH="127.0.0.1:18591,127.0.0.1:18592"
"$BIN/camcd" -worker -rank=0 -peers="$MESH" -epoch=7 -addr=127.0.0.1:18493 -workers=1 >"$LOG/camcd-w0.log" 2>&1 &
pids+=($!)
"$BIN/camcd" -worker -rank=1 -peers="$MESH" -epoch=7 -addr=127.0.0.1:18494 -workers=1 >"$LOG/camcd-w1.log" 2>&1 &
pids+=($!)
wait_healthy http://127.0.0.1:18493
wait_healthy http://127.0.0.1:18494
"$BIN/camcd" -frontend -shards=127.0.0.1:18493,127.0.0.1:18494 -addr=127.0.0.1:18495 >"$LOG/camcd-fe.log" 2>&1 &
pids+=($!)
wait_healthy http://127.0.0.1:18495
# The fleet executes distributed kernels (real TCP supersteps), so keep
# the offered load lighter than the single-process smoke.
"$BIN/loadgen" -target=http://127.0.0.1:18495 -quick -seed="$SEED" \
  -qps=25 -graphs=3 -graph-n=64 -out=BENCH_load_fleet.json

echo "load smoke: OK (BENCH_load_single.json, BENCH_load_fleet.json)"
