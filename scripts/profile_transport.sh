#!/usr/bin/env bash
# profile_transport.sh — CPU, mutex-contention, and block profiles of
# the TCP-loopback exchange loop (p=4, 1024 words/peer by default: the
# mid-size all-to-all the wire-path optimization work is tuned on).
#
#   scripts/profile_transport.sh
#   BENCH='ExchangeTCPLoopback/p=8/w=65536$' BENCHTIME=10s scripts/profile_transport.sh
#
# CAMC_NO_BENCH_SNAPSHOT keeps the transport TestMain from appending
# its full bench sweep (and rewriting BENCH_transport.json) after the
# profiled run — profiling must measure one combination, not the sweep.
set -euo pipefail

OUT=${OUT:-.profiles}
BENCH=${BENCH:-ExchangeTCPLoopback/p=4/w=1024\$}
BENCHTIME=${BENCHTIME:-3s}
NODECOUNT=${NODECOUNT:-15}

mkdir -p "$OUT"

CAMC_NO_BENCH_SNAPSHOT=1 go test -run='^$' -bench="$BENCH" -benchtime="$BENCHTIME" \
  -cpuprofile "$OUT/transport_cpu.out" \
  -mutexprofile "$OUT/transport_mutex.out" \
  -blockprofile "$OUT/transport_block.out" \
  -o "$OUT/transport.test" \
  ./internal/transport/

for kind in cpu mutex block; do
  echo
  echo "== top $NODECOUNT ($kind) =="
  go tool pprof -top -nodecount="$NODECOUNT" "$OUT/transport.test" "$OUT/transport_${kind}.out" 2>/dev/null
done

echo
echo "profiles written to $OUT/ — drill in with:"
echo "  go tool pprof $OUT/transport.test $OUT/transport_cpu.out"
