#!/usr/bin/env bash
# chaos_fleet.sh — the CI fleet self-healing drill: run a 3-process
# fleet (two -worker ranks, rank 1 under -supervise, plus a -frontend),
# put it under loadgen traffic, kill -9 the rank-1 worker process, and
# assert the degraded / recovery contract:
#
#   1. while the rank is dead, distributed queries answer 503 with a
#      Retry-After header;
#   2. the supervisor respawns the rank with a bumped incarnation and
#      catch-up re-replicates every graph byte-identically — including
#      one registered while the rank was dead;
#   3. the identical query then succeeds with the same value, proving
#      the degraded 503 was never cached.
set -euo pipefail

SEED=${SEED:-42}
BIN=${BIN:-$(mktemp -d)}
LOG=${LOG:-$BIN}
mkdir -p "$LOG"

go build -o "$BIN/camcd" ./cmd/camcd
go build -o "$BIN/loadgen" ./cmd/loadgen

pids=()
cleanup() {
  for pid in "${pids[@]:-}"; do
    kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
}
trap cleanup EXIT

wait_status() { # url path want_status
  for _ in $(seq 1 100); do
    if [ "$(curl -s -o /dev/null -w '%{http_code}' "$1$2")" = "$3" ]; then return 0; fi
    sleep 0.2
  done
  echo "chaos_fleet: $1$2 never answered $3" >&2
  return 1
}

MESH="127.0.0.1:18691,127.0.0.1:18692"
W0=http://127.0.0.1:18693
W1=http://127.0.0.1:18694
FE=http://127.0.0.1:18695

"$BIN/camcd" -worker -rank=0 -peers="$MESH" -epoch=11 -addr=127.0.0.1:18693 -workers=1 >"$LOG/camcd-w0.log" 2>&1 &
pids+=($!)
"$BIN/camcd" -worker -rank=1 -peers="$MESH" -epoch=11 -addr=127.0.0.1:18694 -workers=1 -supervise >"$LOG/camcd-w1.log" 2>&1 &
SUPERVISOR=$!
pids+=($SUPERVISOR)
wait_status "$W0" /readyz 200
wait_status "$W1" /readyz 200
"$BIN/camcd" -frontend -shards=127.0.0.1:18693,127.0.0.1:18694 -addr=127.0.0.1:18695 >"$LOG/camcd-fe.log" 2>&1 &
pids+=($!)
wait_status "$FE" /healthz 200

echo "=== chaos fleet 1/4: baseline distributed query ==="
python3 - <<'EOF' >"$BIN/ring.edges"
print(48, 48)
for i in range(48):
    print(i, (i + 1) % 48, 5)
EOF
curl -fsS -X POST --data-binary @"$BIN/ring.edges" "$FE/v1/graphs?name=chaos-ring" >/dev/null
BASELINE=$(curl -fsS -X POST -d '{"graph":"chaos-ring","algorithm":"mincut","seed":11}' "$FE/v1/query" | python3 -c 'import json,sys; print(json.load(sys.stdin)["value"])')
echo "baseline mincut = $BASELINE"
[ "$BASELINE" = "10" ] || { echo "chaos_fleet: baseline mincut $BASELINE != 10" >&2; exit 1; }

echo "=== chaos fleet 2/4: kill -9 rank 1 under load ==="
# Background traffic spanning the kill window; the dead window's 503s
# are expected, so tolerate up to half the requests failing.
"$BIN/loadgen" -target="$FE" -quick -seed="$SEED" -qps=10 -graphs=2 -graph-n=48 \
  -max-error-frac=0.5 -out="$BIN/BENCH_chaos_load.json" >"$LOG/loadgen.log" 2>&1 &
LOADGEN=$!
pids+=($LOADGEN)
sleep 1
WORKER_PID=$(pgrep -P "$SUPERVISOR" | head -1)
[ -n "$WORKER_PID" ] || { echo "chaos_fleet: no worker child under supervisor" >&2; exit 1; }
kill -9 "$WORKER_PID"
echo "killed worker pid $WORKER_PID (supervisor $SUPERVISOR)"

# While the rank is dead the leader fails distributed queries closed:
# 503 with Retry-After, never a cached success. Fresh seeds defeat the
# result cache — a cached success for an old seed is still correct and
# fine to serve degraded.
DEGRADED=0
for i in $(seq 1 100); do
  HDRS=$(curl -s -D - -o /dev/null -X POST -d "{\"graph\":\"chaos-ring\",\"algorithm\":\"mincut\",\"seed\":$((7000 + i))}" "$W0/v1/query")
  CODE=$(printf '%s' "$HDRS" | head -1 | awk '{print $2}')
  if [ "$CODE" = "503" ]; then
    printf '%s' "$HDRS" | grep -qi '^retry-after:' || { echo "chaos_fleet: degraded 503 lacks Retry-After" >&2; exit 1; }
    DEGRADED=1
    break
  fi
  sleep 0.1
done
[ "$DEGRADED" = "1" ] || { echo "chaos_fleet: leader never degraded to 503 after kill -9" >&2; exit 1; }
echo "degraded contract holds: 503 + Retry-After"

echo "=== chaos fleet 3/4: upload while the rank is dead, then recover ==="
python3 - <<'EOF' >"$BIN/missed.edges"
print(32, 32)
for i in range(32):
    print(i, (i + 1) % 32, 2)
EOF
curl -fsS -X POST --data-binary @"$BIN/missed.edges" "$W0/v1/graphs?name=chaos-missed" >/dev/null

wait_status "$W0" /readyz 200
wait_status "$W1" /readyz 200

echo "=== chaos fleet 4/4: verify re-replication + identical answers ==="
curl -fsS "$W0/v1/graphs" >"$BIN/graphs-w0.json"
curl -fsS "$W1/v1/graphs" >"$BIN/graphs-w1.json"
cmp "$BIN/graphs-w0.json" "$BIN/graphs-w1.json" || {
  echo "chaos_fleet: registries differ after catch-up" >&2
  diff "$BIN/graphs-w0.json" "$BIN/graphs-w1.json" >&2 || true
  exit 1
}
AFTER=$(curl -fsS -X POST -d '{"graph":"chaos-ring","algorithm":"mincut","seed":11}' "$FE/v1/query" | python3 -c 'import json,sys; print(json.load(sys.stdin)["value"])')
[ "$AFTER" = "$BASELINE" ] || { echo "chaos_fleet: post-recovery mincut $AFTER != baseline $BASELINE" >&2; exit 1; }
MISSED=$(curl -fsS -X POST -d '{"graph":"chaos-missed","algorithm":"mincut","seed":11}' "$W0/v1/query" | python3 -c 'import json,sys; print(json.load(sys.stdin)["value"])')
[ "$MISSED" = "4" ] || { echo "chaos_fleet: mincut on re-replicated graph $MISSED != 4" >&2; exit 1; }
INC=$(curl -fsS "$W0/v1/stats" | python3 -c 'import json,sys; print(json.load(sys.stdin)["fleet"]["peers"][0]["incarnation"])')
[ "$INC" -ge 2 ] || { echo "chaos_fleet: respawned rank incarnation $INC < 2" >&2; exit 1; }

wait "$LOADGEN" || { echo "chaos_fleet: loadgen exceeded the tolerated error fraction" >&2; exit 1; }
echo "chaos fleet: OK (baseline=$BASELINE recovered=$AFTER missed=$MISSED incarnation=$INC)"
