package camc

import (
	"testing"
)

// Larger cross-checks; skipped with -short.

func TestStressCCLargeSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := BarabasiAlbert(300_000, 8, 5, GenConfig{})
	labels, want := SequentialCC(g)
	res, err := ConnectedComponents(g, Options{Processors: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != want {
		t.Fatalf("count %d vs %d", res.Count, want)
	}
	// Spot-check label partition agreement on a sample of pairs.
	for i := 0; i+1000 < g.N; i += 7919 {
		a, b := i, i+1000
		if (labels[a] == labels[b]) != (res.Labels[a] == res.Labels[b]) {
			t.Fatalf("partition disagreement at (%d,%d)", a, b)
		}
	}
}

func TestStressMinCutMediumGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	g := WattsStrogatz(1024, 16, 0.3, 11, GenConfig{MaxWeight: 3})
	res, err := MinCut(g, Options{Processors: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Side[0] && res.Value == 0 {
		t.Fatal("implausible zero cut on connected WS graph")
	}
	if CutValue(g, res.Side) != res.Value {
		t.Fatal("certificate mismatch")
	}
	// The approximation must bracket the exact value within its factor.
	app, err := ApproxMinCut(g, Options{Processors: 4, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(app.Value) / float64(res.Value)
	if ratio < 1.0/16 || ratio > 16 {
		t.Errorf("approx %d vs exact %d: ratio %.2f outside generous bracket", app.Value, res.Value, ratio)
	}
	// Exact value can never exceed the min weighted degree.
	minDeg := ^uint64(0)
	deg := g.Degrees()
	for _, d := range deg {
		if d < minDeg {
			minDeg = d
		}
	}
	if res.Value > minDeg {
		t.Errorf("cut %d exceeds min degree %d", res.Value, minDeg)
	}
}

func TestStressDeterministicAcrossP(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// The cut VALUE must agree across processor counts whp; sides may
	// differ between ties.
	g := ErdosRenyi(256, 2048, 31, GenConfig{MaxWeight: 4})
	want, _ := StoerWagner(g)
	for _, p := range []int{1, 3, 5, 8} {
		res, err := MinCut(g, Options{Processors: p, Seed: 17, SuccessProb: 0.95})
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want {
			t.Errorf("p=%d: %d, want %d", p, res.Value, want)
		}
	}
}
