// Graph clustering: minimum cuts split a graph at its sparsest
// connection, the primitive behind min-cut clustering pipelines such as
// CLICK for gene-expression analysis (cited in the paper's
// introduction). The approximate variant makes the split decision cheap:
// it estimates the cut within an O(log n) factor in near-linear work, so
// a clustering driver can use it to decide *whether* to split before
// paying for an exact cut.
//
// This example plants two communities with noisy intra-community edges
// and a thin bridge, uses ApproxMinCut as the cheap screen, then extracts
// the exact bipartition and scores it against the planted ground truth.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/rng"
)

const (
	commSize  = 60
	intraDeg  = 10
	bridgeCap = 2
)

func main() {
	n := 2 * commSize
	g := camc.NewGraph(n)
	st := rng.New(2024, 0, 0)

	// Two random communities: each vertex gets intraDeg random edges
	// inside its community (plus a ring for connectivity).
	for c := 0; c < 2; c++ {
		base := int32(c * commSize)
		for i := int32(0); i < commSize; i++ {
			g.AddEdge(base+i, base+(i+1)%commSize, 3)
			for k := 0; k < intraDeg; k++ {
				j := int32(st.Intn(commSize))
				if j != i {
					g.AddEdge(base+i, base+j, 1+st.Uint64n(3))
				}
			}
		}
	}
	// A thin bridge between the communities.
	for b := int32(0); b < bridgeCap; b++ {
		g.AddEdge(b*11, int32(commSize)+b*13, 1)
	}

	opts := camc.Options{Processors: 4, Seed: 99}

	// Cheap screen: is there a sparse cut worth splitting at?
	approx, err := camc.ApproxMinCut(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	degreeScale := uint64(2 * intraDeg) // typical weighted degree scale
	fmt.Printf("approximate min cut: %d (vertex degree scale ~%d)\n", approx.Value, degreeScale)
	if approx.Value >= degreeScale {
		fmt.Println("no sparse cut indicated; not splitting")
		return
	}
	fmt.Println("sparse cut indicated -> computing the exact split")

	exact, err := camc.MinCut(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact min cut: %d\n", exact.Value)

	// Score against the planted communities (orientation-free: a cut
	// side and its complement describe the same split).
	match := 0
	for v := 0; v < n; v++ {
		if exact.Side[v] == (v >= commSize) {
			match++
		}
	}
	if n-match > match {
		match = n - match
	}
	fmt.Printf("community recovery: %d/%d vertices match the planted partition (%.1f%%)\n",
		match, n, 100*float64(match)/float64(n))
}
