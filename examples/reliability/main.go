// Network reliability: the global minimum cut of a network is its
// weakest failure set — the smallest total link capacity whose loss
// disconnects the network (the all-terminal reliability bottleneck,
// one of the classic minimum cut applications cited in the paper's
// introduction).
//
// This example builds a two-datacenter topology — two well-meshed
// clusters joined by a few long-haul links — asks for the exact minimum
// cut, and reports which links form the bottleneck.
//
//	go run ./examples/reliability
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	clusterSize = 24
	longHauls   = 3
)

func main() {
	n := 2 * clusterSize
	g := camc.NewGraph(n)

	// Intra-datacenter mesh: each node links to the next 4 in its rack
	// ring with capacity 10.
	for dc := 0; dc < 2; dc++ {
		base := int32(dc * clusterSize)
		for i := int32(0); i < clusterSize; i++ {
			for k := int32(1); k <= 4; k++ {
				g.AddEdge(base+i, base+(i+k)%clusterSize, 10)
			}
		}
	}
	// Long-haul links between the datacenters, capacity 8 each.
	for l := int32(0); l < longHauls; l++ {
		g.AddEdge(l*7, int32(clusterSize)+l*5, 8)
	}

	res, err := camc.MinCut(g, camc.Options{Processors: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network min cut (weakest failure set): capacity %d\n", res.Value)
	if want := uint64(longHauls * 8); res.Value == want {
		fmt.Printf("-> the %d long-haul links (capacity %d) are the reliability bottleneck\n", longHauls, want)
	}

	fmt.Println("links crossing the bottleneck cut:")
	for _, e := range g.Edges {
		if res.Side[e.U] != res.Side[e.V] {
			fmt.Printf("  %2d -- %2d  capacity %d\n", e.U, e.V, e.W)
		}
	}

	// What-if: upgrade one long-haul link and re-evaluate.
	for i := range g.Edges {
		e := &g.Edges[i]
		if res.Side[e.U] != res.Side[e.V] {
			e.W *= 4
			fmt.Printf("\nupgrading link %d--%d to capacity %d...\n", e.U, e.V, e.W)
			break
		}
	}
	res2, err := camc.MinCut(g, camc.Options{Processors: 4, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new min cut: %d (improved by %d)\n", res2.Value, res2.Value-res.Value)
}
