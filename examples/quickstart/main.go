// Quickstart: build a small weighted graph, compute its exact minimum
// cut, an O(log n) approximation, and its connected components, and
// verify the cut certificate independently.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A ring of 8 vertices with one weak link: cutting a ring costs two
	// edges, so the minimum cut (value 1+5 = 6) uses the weak edge plus
	// one strong one.
	g := camc.NewGraph(8)
	for i := int32(0); i < 8; i++ {
		w := uint64(5)
		if i == 3 {
			w = 1 // the weak link (3,4)
		}
		g.AddEdge(i, (i+1)%8, w)
	}

	opts := camc.Options{Processors: 4, Seed: 42}

	cut, err := camc.MinCut(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact minimum cut: %d (found in %d trials, %d supersteps)\n",
		cut.Value, cut.Trials, cut.Stats.Supersteps)
	fmt.Printf("one side of the cut:")
	for v, in := range cut.Side {
		if in {
			fmt.Printf(" %d", v)
		}
	}
	fmt.Println()
	// Every result is independently checkable.
	if camc.CutValue(g, cut.Side) != cut.Value {
		log.Fatal("certificate mismatch!")
	}
	fmt.Println("certificate verified: side evaluates to the reported value")

	approx, err := camc.ApproxMinCut(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximate minimum cut: %d (within O(log n) of %d)\n", approx.Value, cut.Value)

	comps, err := camc.ConnectedComponents(g, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected components: %d\n", comps.Count)
}
