// Connected-component labelling of a bitmap — the medical-imaging /
// image-processing application of connected components the paper's
// introduction motivates. Foreground pixels become vertices, 4-adjacency
// becomes edges, and the parallel iterated-sampling algorithm labels the
// blobs.
//
//	go run ./examples/imaging
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// A small bitmap: '#' is foreground. Three blobs (one C-shaped, so plain
// row scanning would over-count it).
const bitmap = `
........................
..####......##..........
..#..#......##...####...
..#..#..........#..#....
..####...###....#..#....
.........###....####....
..####...###............
..#.....................
..#...####..####........
..####.#..###..#........
.......#.......#........
.......#########........
`

func main() {
	rows := strings.Split(strings.TrimSpace(bitmap), "\n")
	h := len(rows)
	w := 0
	for _, r := range rows {
		if len(r) > w {
			w = len(r)
		}
	}
	at := func(r, c int) bool {
		return r >= 0 && r < h && c >= 0 && c < len(rows[r]) && rows[r][c] == '#'
	}

	// One vertex per pixel (background pixels stay isolated and are
	// filtered from the report).
	g := camc.NewGraph(h * w)
	id := func(r, c int) int32 { return int32(r*w + c) }
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if !at(r, c) {
				continue
			}
			if at(r, c+1) {
				g.AddEdge(id(r, c), id(r, c+1), 1)
			}
			if at(r+1, c) {
				g.AddEdge(id(r, c), id(r+1, c), 1)
			}
		}
	}

	res, err := camc.ConnectedComponents(g, camc.Options{Processors: 4, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Count foreground blobs and relabel them 1..k for display.
	blobs := map[int32]int{}
	for r := 0; r < h; r++ {
		for c := 0; c < w; c++ {
			if at(r, c) {
				l := res.Labels[id(r, c)]
				if _, ok := blobs[l]; !ok {
					blobs[l] = len(blobs) + 1
				}
			}
		}
	}
	fmt.Printf("foreground blobs: %d (labelled in %d supersteps on %d processors)\n\n",
		len(blobs), res.Stats.Supersteps, res.Stats.P)
	for r := 0; r < h; r++ {
		var sb strings.Builder
		for c := 0; c < w; c++ {
			if at(r, c) {
				fmt.Fprintf(&sb, "%d", blobs[res.Labels[id(r, c)]])
			} else {
				sb.WriteByte('.')
			}
		}
		fmt.Println(sb.String())
	}
}
