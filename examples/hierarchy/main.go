// Hierarchical min-cut clustering (CLICK-style, per the gene-expression
// application cited in the paper's introduction): recursively bisect the
// graph at its global minimum cut until the cut is no longer "sparse"
// relative to the cluster's internal connectivity. The approximate cut
// (near-linear work) screens each cluster before the exact cut is paid
// for — exactly the role §3.3 proposes for it.
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/rng"
)

// cluster is a vertex set (ids into the original graph).
type cluster struct {
	vertices []int32
	depth    int
}

// induced builds the subgraph on the cluster's vertices.
func induced(g *camc.Graph, members []int32) (*camc.Graph, []int32) {
	index := make(map[int32]int32, len(members))
	for i, v := range members {
		index[v] = int32(i)
	}
	sub := camc.NewGraph(len(members))
	for _, e := range g.Edges {
		u, okU := index[e.U]
		v, okV := index[e.V]
		if okU && okV {
			sub.AddEdge(u, v, e.W)
		}
	}
	return sub, members
}

func main() {
	// Three planted communities of different sizes, plus noise.
	sizes := []int{30, 20, 14}
	n := 0
	for _, s := range sizes {
		n += s
	}
	g := camc.NewGraph(n)
	st := rng.New(7, 0, 0)
	base := 0
	for _, size := range sizes {
		for i := 0; i < size; i++ {
			g.AddEdge(int32(base+i), int32(base+(i+1)%size), 4)
			for k := 0; k < 6; k++ {
				j := st.Intn(size)
				if j != i {
					g.AddEdge(int32(base+i), int32(base+j), 2)
				}
			}
		}
		base += size
	}
	// Sparse noise between communities.
	g.AddEdge(3, 35, 1)
	g.AddEdge(10, 40, 1)
	g.AddEdge(33, 55, 1)
	g.AddEdge(48, 60, 1)
	g.AddEdge(5, 52, 1)

	opts := camc.Options{Processors: 4, Seed: 99}
	var leaves []cluster
	work := []cluster{{vertices: all(n), depth: 0}}
	for len(work) > 0 {
		cl := work[len(work)-1]
		work = work[:len(work)-1]
		if len(cl.vertices) < 8 {
			leaves = append(leaves, cl)
			continue
		}
		sub, members := induced(g, cl.vertices)
		// Cheap screen: approximate cut vs internal degree scale.
		app, err := camc.ApproxMinCut(sub, opts)
		if err != nil {
			log.Fatal(err)
		}
		degScale := 2 * sub.TotalWeight() / uint64(sub.N) // avg weighted degree
		if app.Value*4 >= degScale {
			leaves = append(leaves, cl) // well-knit: stop splitting
			continue
		}
		exact, err := camc.MinCut(sub, opts)
		if err != nil {
			log.Fatal(err)
		}
		var left, right []int32
		for i, inSide := range exact.Side {
			if inSide {
				left = append(left, members[i])
			} else {
				right = append(right, members[i])
			}
		}
		fmt.Printf("split at depth %d: %d + %d vertices (cut %d, approx screen %d)\n",
			cl.depth, len(left), len(right), exact.Value, app.Value)
		work = append(work,
			cluster{vertices: left, depth: cl.depth + 1},
			cluster{vertices: right, depth: cl.depth + 1})
	}

	sort.Slice(leaves, func(i, j int) bool { return leaves[i].vertices[0] < leaves[j].vertices[0] })
	fmt.Printf("\n%d clusters found (planted: %d)\n", len(leaves), len(sizes))
	for i, cl := range leaves {
		sort.Slice(cl.vertices, func(a, b int) bool { return cl.vertices[a] < cl.vertices[b] })
		fmt.Printf("  cluster %d (%d vertices): %d..%d\n",
			i+1, len(cl.vertices), cl.vertices[0], cl.vertices[len(cl.vertices)-1])
	}
}

func all(n int) []int32 {
	vs := make([]int32, n)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}
