// Redundancy audit: Lemma 4.3 of the paper says the algorithm finds
// *all* minimum cuts w.h.p. — useful when one bottleneck is not enough
// to know: a network operator wants every weakest failure set, because
// fixing one changes nothing if nine others have the same capacity.
//
// This example audits a ring backbone (every pair of links is a minimum
// cut — maximal redundancy exposure) and then a reinforced variant, and
// reports how many distinct weakest failure sets each has.
//
//	go run ./examples/allcuts
package main

import (
	"fmt"

	"repro"
)

func auditRing(name string, g *camc.Graph) {
	value, sides := camc.AllMinCuts(g, 2024, 0.99)
	fmt.Printf("%s: minimum cut %d, %d distinct weakest failure set(s)\n", name, value, len(sides))
	shown := 0
	for _, side := range sides {
		if shown == 4 {
			fmt.Println("   ...")
			break
		}
		fmt.Print("   cut separates {")
		for v, in := range side {
			if in {
				fmt.Printf(" %d", v)
			}
		}
		fmt.Print(" } | crossing links:")
		for _, e := range g.Edges {
			if side[e.U] != side[e.V] {
				fmt.Printf(" %d-%d", e.U, e.V)
			}
		}
		fmt.Println()
		shown++
	}
}

func main() {
	const n = 8

	// A plain ring: any two links form a minimum cut -> C(8,2) = 28
	// weakest failure sets. Upgrading one link helps almost nothing.
	ring := camc.NewGraph(n)
	for i := int32(0); i < n; i++ {
		ring.AddEdge(i, (i+1)%n, 10)
	}
	auditRing("plain ring", ring)

	// Reinforced ring: two chords leave far fewer minimum cuts.
	reinforced := camc.NewGraph(n)
	for i := int32(0); i < n; i++ {
		reinforced.AddEdge(i, (i+1)%n, 10)
	}
	reinforced.AddEdge(0, 4, 10)
	reinforced.AddEdge(2, 6, 10)
	auditRing("reinforced ring", reinforced)
}
