package camc

import "testing"

func TestAllMinCutsAPI(t *testing.T) {
	g := ringGraph(6, 1) // C6: C(6,2) = 15 minimum cuts of value 2
	value, sides := AllMinCuts(g, 3, 0.99)
	if value != 2 {
		t.Fatalf("value = %d, want 2", value)
	}
	if len(sides) < 12 {
		t.Errorf("found %d of 15 cycle cuts", len(sides))
	}
	for _, s := range sides {
		if CutValue(g, s) != 2 {
			t.Fatal("side does not certify the value")
		}
	}
}

func TestContractHeavyEdgesAPI(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 100)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 100)
	g.AddEdge(3, 0, 1)
	// Minimum cut is 2 (the two light edges); bound 2 contracts the heavy
	// ones.
	cg, mapping := ContractHeavyEdges(g, 2)
	if cg.N != 2 {
		t.Fatalf("contracted N = %d, want 2", cg.N)
	}
	res, err := MinCut(cg, Options{Processors: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 2 {
		t.Errorf("cut on contracted graph = %d, want 2", res.Value)
	}
	lifted := make([]bool, g.N)
	for v := range lifted {
		lifted[v] = res.Side[mapping[v]]
	}
	if CutValue(g, lifted) != 2 {
		t.Errorf("lifted cut = %d", CutValue(g, lifted))
	}
}

func TestMaxFlowAPI(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 7)
	g.AddEdge(0, 2, 9)
	g.AddEdge(2, 3, 4)
	value, side := MaxFlow(g, 0, 3)
	if value != 6 {
		t.Errorf("max flow = %d, want 6", value)
	}
	if !side[0] || side[3] {
		t.Errorf("source side wrong: %v", side)
	}
	if CutValue(g, side) != value {
		t.Error("min s-t cut does not certify the flow (duality)")
	}
}
