package camc

import (
	"bytes"
	"testing"
)

func ringGraph(n int, w uint64) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		g.AddEdge(int32(i), int32((i+1)%n), w)
	}
	return g
}

func TestQuickstartMinCut(t *testing.T) {
	g := NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 0, 2)
	res, err := MinCut(g, Options{Processors: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 {
		t.Errorf("min cut = %d, want 3", res.Value)
	}
	if CutValue(g, res.Side) != res.Value {
		t.Error("side does not certify the value")
	}
}

func TestMinCutDefaults(t *testing.T) {
	g := ringGraph(24, 2)
	res, err := MinCut(g, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 4 {
		t.Errorf("ring cut = %d, want 4", res.Value)
	}
	if res.Stats.P < 1 || res.Stats.Supersteps < 1 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
}

func TestApproxMinCut(t *testing.T) {
	g := ringGraph(64, 1)
	res, err := ApproxMinCut(g, Options{Processors: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value < 1 || res.Value > 16 {
		t.Errorf("approx estimate %d far from true cut 2", res.Value)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := NewGraph(10)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(5, 6, 1)
	res, err := ConnectedComponents(g, Options{Processors: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 7 {
		t.Errorf("components = %d, want 7", res.Count)
	}
	if res.Labels[0] != res.Labels[2] || res.Labels[0] == res.Labels[5] {
		t.Errorf("labels wrong: %v", res.Labels)
	}
}

func TestBaselinesAgree(t *testing.T) {
	g := ErdosRenyi(40, 220, 9, GenConfig{MaxWeight: 4})
	if !g.IsConnected() {
		t.Skip("rare: disconnected sample")
	}
	swVal, swSide := StoerWagner(g)
	if CutValue(g, swSide) != swVal {
		t.Error("SW side inconsistent")
	}
	ksVal, ksSide := KargerStein(g, 3, 0.95)
	if CutValue(g, ksSide) != ksVal {
		t.Error("KS side inconsistent")
	}
	if swVal != ksVal {
		t.Errorf("SW %d vs KS %d", swVal, ksVal)
	}
	res, err := MinCut(g, Options{Processors: 4, Seed: 11, SuccessProb: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != swVal {
		t.Errorf("parallel %d vs SW %d", res.Value, swVal)
	}
}

func TestSequentialCCBaseline(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	labels, count := SequentialCC(g)
	if count != 4 || labels[0] != labels[1] || labels[0] == labels[2] {
		t.Errorf("labels %v count %d", labels, count)
	}
}

func TestGraphIO(t *testing.T) {
	g := ringGraph(5, 3)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != 5 || back.M() != 5 {
		t.Errorf("round trip: n=%d m=%d", back.N, back.M())
	}
}

func TestGenerators(t *testing.T) {
	if g := ErdosRenyi(50, 100, 1, GenConfig{}); g.M() != 100 {
		t.Error("ER generator")
	}
	if g := WattsStrogatz(50, 4, 0.3, 1, GenConfig{}); g.M() != 100 {
		t.Error("WS generator")
	}
	if g := BarabasiAlbert(50, 3, 1, GenConfig{}); !g.IsConnected() {
		t.Error("BA generator")
	}
	if g := RMAT(6, 100, 1, GenConfig{}); g.N != 64 {
		t.Error("RMAT generator")
	}
}

func TestInvalidGraphRejected(t *testing.T) {
	g := NewGraph(2)
	g.Edges = append(g.Edges, Edge{U: 0, V: 9, W: 1})
	if _, err := MinCut(g, Options{}); err == nil {
		t.Error("MinCut accepted corrupt graph")
	}
	if _, err := ApproxMinCut(g, Options{}); err == nil {
		t.Error("ApproxMinCut accepted corrupt graph")
	}
	if _, err := ConnectedComponents(g, Options{}); err == nil {
		t.Error("ConnectedComponents accepted corrupt graph")
	}
	if _, err := MinCut(nil, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := ErdosRenyi(60, 300, 4, GenConfig{MaxWeight: 5})
	a, err := MinCut(g, Options{Processors: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinCut(g, Options{Processors: 3, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value {
		t.Errorf("same seed, different cuts: %d vs %d", a.Value, b.Value)
	}
}
