# Development targets. `make check` is the default gate: build + vet +
# full tests + race detector over the concurrent subsystems (the serving
# layer and the BSP runtime).

GO ?= go

.PHONY: all build test vet race check bench camcd

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The service layer and BSP runtime are heavily concurrent; they are
# race-checked on every default run.
race:
	$(GO) test -race ./internal/service/... ./internal/bsp/...

check: build vet test race

bench:
	$(GO) run ./cmd/bench -exp all -quick

camcd:
	$(GO) run ./cmd/camcd
