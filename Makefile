# Development targets. `make check` is the default gate: build + vet +
# full tests + race detector over the concurrent subsystems (the serving
# layer and the BSP runtime).

GO ?= go

.PHONY: all build test vet race check chaos chaos-fleet lint vuln bench bench-bsp bench-kernels bench-service bench-planner bench-transport bench-fleet bench-gate profile-transport load-smoke transport camcd

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The service layer and BSP runtime are heavily concurrent; they are
# race-checked on every default run.
race:
	$(GO) test -race ./internal/service/... ./internal/bsp/...

check: build vet test race

# Chaos suite: fault injection, cancellation races, abort cascades, and
# degraded-result delivery, run twice under the race detector to shake
# out ordering-dependent bugs. Set CHAOS_SNAPSHOT=/path.json to export
# the outcome ledger (CI archives it as an artifact).
chaos:
	$(GO) test -race -count=2 -run 'Chaos|Abort|Cancel|Fault|RunCtx|Reuse' \
		./internal/service/ ./internal/bsp/
	$(GO) test -race -count=2 ./internal/faults/

# Fleet self-healing drill: kill -9 one worker of a live 3-process
# fleet under loadgen traffic and assert the degraded 503 + Retry-After
# contract, the supervised respawn with a bumped incarnation, and
# byte-identical graph re-replication.
chaos-fleet:
	bash scripts/chaos_fleet.sh

# Static analysis beyond vet. Uses golangci-lint when installed (CI
# always has it); locally it degrades to a hint rather than failing.
lint:
	@if command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./...; \
	else \
		echo "golangci-lint not installed; see .golangci.yml (CI runs it)"; \
	fi

# Known-vulnerability scan. Like lint, degrades to a hint when the tool
# is absent (CI installs it).
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed (go install golang.org/x/vuln/cmd/govulncheck@latest); CI runs it"; \
	fi

bench:
	$(GO) run ./cmd/bench -exp all -quick

# BSP hot-path microbenchmarks (benchstat-comparable output; also writes
# internal/bsp/BENCH_bsp.json).
bench-bsp:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/bsp/

# Kernel-layer microbenchmarks: radix sort vs comparison sort, the fused
# sort+combine, arena vs clone-per-node Karger–Stein, and dense-vs-map
# remaps (also writes internal/kernels/BENCH_kernels.json).
bench-kernels:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/kernels/

# Serving-layer benchmarks: warm-plan vs cold repeated-query throughput
# and static vs dynamic trial scheduling under an injected straggler
# (also writes internal/service/BENCH_service.json and
# internal/service/BENCH_planner.json).
bench-service:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/service/

# Planner/portfolio benchmarks: planner-selected kernel vs the
# always-label-propagation baseline on a high-diameter path, the
# machine-less shared kernel vs the p=1 BSP path on a small warm graph,
# deterministic lowround counts, and the planner's win-rate/prediction
# accounting. Shares the service suite's TestMain writer, so it
# regenerates both internal/service/BENCH_planner.json and
# internal/service/BENCH_service.json.
bench-planner:
	$(GO) test -run='^$$' -bench=. -benchmem ./internal/service/

# Cross-fabric benchmarks: the same all-to-all superstep through the
# in-process fabric and the TCP-loopback fabric (with and without
# payload codecs) at p in {2,4,8} × {64,1024,65536} words/peer. The
# transport TestMain runs the full sweep itself and writes
# internal/transport/BENCH_transport.json, so the named run is just the
# minimal trigger.
bench-transport:
	$(GO) test -run='^$$' -bench='ExchangeLocal/p=2/w=64$$' ./internal/transport/

# Profile the TCP wire path: CPU, mutex, and block profiles of the p=4
# loopback exchange loop (override BENCH/BENCHTIME in the environment).
profile-transport:
	bash scripts/profile_transport.sh

# Fleet self-healing scorecard: run the scripted kill/failover/respawn
# scenario in-process and write internal/shard/BENCH_fleet.json (the
# detection/recovery counts the bench gate checks deterministically).
bench-fleet:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/shard/

# Regression gate: save the committed BENCH_*.json baselines aside,
# re-run every bench suite, and fail if a tagged-critical metric
# (comm volume, supersteps, cut values, allocation counts, speedup
# ratios) regressed beyond tolerance. BENCHTIME tunes the re-run cost.
bench-gate:
	bash scripts/bench_gate.sh

# Loadgen smoke: deterministic mixed traffic against a single-process
# daemon and a 3-process fleet; writes BENCH_load_{single,fleet}.json.
load-smoke:
	bash scripts/load_smoke.sh

# Multi-process tier: the transport fabric, the shard serving tier, and
# the 3-process fleet e2e (spawns real camcd processes), race-checked.
transport:
	$(GO) test -race -count=1 ./internal/transport/ ./internal/shard/ ./cmd/camcd/

camcd:
	$(GO) run ./cmd/camcd
