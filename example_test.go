package camc_test

import (
	"fmt"

	camc "repro"
)

// The minimum cut of a weighted ring uses its two lightest links.
func ExampleMinCut() {
	g := camc.NewGraph(4)
	g.AddEdge(0, 1, 3)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 3)
	g.AddEdge(3, 0, 2)
	res, err := camc.MinCut(g, camc.Options{Processors: 2, Seed: 42})
	if err != nil {
		panic(err)
	}
	fmt.Println("cut value:", res.Value)
	fmt.Println("certified:", camc.CutValue(g, res.Side) == res.Value)
	// Output:
	// cut value: 3
	// certified: true
}

func ExampleConnectedComponents() {
	g := camc.NewGraph(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(3, 4, 1)
	res, err := camc.ConnectedComponents(g, camc.Options{Processors: 2, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println("components:", res.Count)
	fmt.Println("0 and 2 together:", res.Labels[0] == res.Labels[2])
	fmt.Println("0 and 3 together:", res.Labels[0] == res.Labels[3])
	// Output:
	// components: 3
	// 0 and 2 together: true
	// 0 and 3 together: false
}

func ExampleApproxMinCut() {
	// A cycle of 64 unit edges has minimum cut 2; the estimate is within
	// an O(log n) factor using near-linear work.
	g := camc.NewGraph(64)
	for i := int32(0); i < 64; i++ {
		g.AddEdge(i, (i+1)%64, 1)
	}
	res, err := camc.ApproxMinCut(g, camc.Options{Processors: 2, Seed: 3})
	if err != nil {
		panic(err)
	}
	fmt.Println("estimate within 8x of 2:", res.Value >= 1 && res.Value <= 16)
	// Output:
	// estimate within 8x of 2: true
}

func ExampleStoerWagner() {
	g := camc.NewGraph(3)
	g.AddEdge(0, 1, 5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(0, 2, 3)
	value, side := camc.StoerWagner(g)
	fmt.Println("value:", value)
	fmt.Println("vertex 2 isolated:", side[2] != side[0] && side[0] == side[1])
	// Output:
	// value: 5
	// vertex 2 isolated: true
}

// Every minimum cut of a 4-cycle: any two of its edges, C(4,2) = 6.
func ExampleAllMinCuts() {
	g := camc.NewGraph(4)
	for i := int32(0); i < 4; i++ {
		g.AddEdge(i, (i+1)%4, 1)
	}
	value, sides := camc.AllMinCuts(g, 7, 0.99)
	fmt.Println("value:", value)
	fmt.Println("distinct cuts:", len(sides))
	// Output:
	// value: 2
	// distinct cuts: 6
}

// Max-flow min-cut duality on a two-path network.
func ExampleMaxFlow() {
	g := camc.NewGraph(4)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 3, 7)
	g.AddEdge(0, 2, 9)
	g.AddEdge(2, 3, 4)
	value, side := camc.MaxFlow(g, 0, 3)
	fmt.Println("flow:", value)
	fmt.Println("cut certifies:", camc.CutValue(g, side) == value)
	// Output:
	// flow: 6
	// cut certifies: true
}
