// Benchmarks mirroring the paper's evaluation: one benchmark per table
// and figure (§5). Each runs a scaled-down instance of the figure's
// workload and reports the figure's metric as custom benchmark outputs
// (comm_frac, supersteps, misses/op, ipm, …). The cmd/bench harness runs
// the full sweeps; these benches give the one-command `go test -bench=.`
// view of every experiment.
package camc

import (
	"fmt"
	"testing"

	"repro/internal/bsp"
	"repro/internal/cachesim"
	"repro/internal/cc"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mincut"
	"repro/internal/perfmodel"
	"repro/internal/rng"
)

// reportStats attaches the paper's measurement set to a benchmark.
func reportStats(b *testing.B, st core.RunStats) {
	b.ReportMetric(st.CommFraction, "comm_frac")
	b.ReportMetric(float64(st.Supersteps), "supersteps")
	b.ReportMetric(float64(st.CommVolume), "comm_words")
}

// BenchmarkTable1Bounds measures the exact minimum cut's BSP cost
// counters (supersteps, computation, volume) on a fixed workload; Table 1
// asserts how they must scale — the cmd/bench table1 experiment prints the
// growth-ratio comparison in full.
func BenchmarkTable1Bounds(b *testing.B) {
	for _, n := range []int{256, 512} {
		g := gen.ErdosRenyiM(n, n*16, 1, gen.Config{})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var st core.RunStats
			for i := 0; i < b.N; i++ {
				res, err := core.MinCut(g, core.Options{Processors: 4, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, st)
			b.ReportMetric(float64(st.Ops), "bsp_comp")
			b.ReportMetric(perfmodel.MCVolume(float64(n), 4), "bound_volume")
		})
	}
}

// BenchmarkFig1MCStrongScalingSparse: exact min cut on a sparse
// Erdős–Rényi graph across processor counts (Figure 1a/1b).
func BenchmarkFig1MCStrongScalingSparse(b *testing.B) {
	n := 512
	g := gen.ErdosRenyiM(n, n*16, 1, gen.Config{})
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st core.RunStats
			for i := 0; i < b.N; i++ {
				res, err := core.MinCut(g, core.Options{Processors: p, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, st)
		})
	}
}

// BenchmarkFig3aCCSparse: connected components on a sparse
// Barabási–Albert graph, our algorithm vs the three baselines
// (Figure 3a).
func BenchmarkFig3aCCSparse(b *testing.B) {
	g := gen.BarabasiAlbert(50_000, 16, 1, gen.Config{})
	benchCCImplementations(b, g)
}

// BenchmarkFig3bCCDense: connected components on a dense R-MAT graph
// (Figure 3b).
func BenchmarkFig3bCCDense(b *testing.B) {
	g := gen.RMAT(13, (1<<13)*32, 1, gen.Config{})
	benchCCImplementations(b, g)
}

func benchCCImplementations(b *testing.B, g *graph.Graph) {
	const p = 4
	b.Run("CC", func(b *testing.B) {
		var st core.RunStats
		for i := 0; i < b.N; i++ {
			res, err := core.ConnectedComponents(g, core.Options{Processors: p, Seed: uint64(i + 1)})
			if err != nil {
				b.Fatal(err)
			}
			st = res.Stats
		}
		reportStats(b, st)
	})
	b.Run("BGL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.Sequential(g)
		}
	})
	b.Run("PBGL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := bsp.Run(p, func(c *bsp.Comm) {
				var in *graph.Graph
				if c.Rank() == 0 {
					in = g
				}
				n, local := dist.ScatterGraph(c, 0, in)
				cc.LabelPropagation(c, n, local)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Galois", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.SharedMemory(g, p)
		}
	})
}

// BenchmarkFig4aCCCacheMisses: simulated LLC misses of sequential CC vs
// the BGL and Galois baselines (Figure 4a; misses/op reported).
func BenchmarkFig4aCCCacheMisses(b *testing.B) {
	g := gen.RMAT(14, (1<<14)*32, 1, gen.Config{})
	kernels := map[string]func(c *cachesim.Cache){
		"BGL":    func(c *cachesim.Cache) { cachesim.BFSCC(c, g) },
		"CC":     func(c *cachesim.Cache) { cachesim.SamplingCC(c, g, rng.New(1, 0, 0), 0.5) },
		"Galois": func(c *cachesim.Cache) { cachesim.UnionFindCC(c, g) },
	}
	for _, name := range []string{"BGL", "CC", "Galois"} {
		b.Run(name, func(b *testing.B) {
			var misses, ipm float64
			for i := 0; i < b.N; i++ {
				c := cachesim.New(1<<15, 8)
				kernels[name](c)
				misses = float64(c.Misses())
				ipm = c.IPM()
			}
			b.ReportMetric(misses, "sim_misses")
			b.ReportMetric(ipm, "ipm")
		})
	}
}

// BenchmarkFig4dCCStrongScaling: CC app/comm split across processors
// (Figure 4d).
func BenchmarkFig4dCCStrongScaling(b *testing.B) {
	g := gen.RMAT(13, (1<<13)*32, 1, gen.Config{})
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st core.RunStats
			for i := 0; i < b.N; i++ {
				res, err := core.ConnectedComponents(g, core.Options{Processors: p, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, st)
		})
	}
}

// BenchmarkFig5aAppMCStrong: approximate min cut strong scaling on a
// dense R-MAT graph (Figure 5a).
func BenchmarkFig5aAppMCStrong(b *testing.B) {
	g := gen.RMAT(11, (1<<11)*64, 1, gen.Config{})
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st core.RunStats
			for i := 0; i < b.N; i++ {
				res, err := core.ApproxMinCut(g, core.Options{Processors: p, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, st)
		})
	}
}

// BenchmarkFig5bAppMCWeak: approximate min cut weak scaling — edges and
// processors grow together; ns/op should stay roughly flat (Figure 5b).
func BenchmarkFig5bAppMCWeak(b *testing.B) {
	const edgesPerProc = 1 << 15
	for _, p := range []int{1, 2, 4} {
		g := gen.RMAT(10, edgesPerProc*p, 1, gen.Config{})
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.ApproxMinCut(g, core.Options{Processors: p, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6MCStrongScalingDense: exact min cut strong scaling on a
// dense graph (Figure 6).
func BenchmarkFig6MCStrongScalingDense(b *testing.B) {
	n := 384
	g := gen.ErdosRenyiM(n, n*48, 1, gen.Config{})
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			var st core.RunStats
			for i := 0; i < b.N; i++ {
				res, err := core.MinCut(g, core.Options{Processors: p, Seed: uint64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				st = res.Stats
			}
			reportStats(b, st)
		})
	}
}

// BenchmarkFig7MCWeakScaling: exact min cut weak scaling — vertices per
// processor fixed (Figure 7; paper shape: time grows ~linearly in n).
func BenchmarkFig7MCWeakScaling(b *testing.B) {
	const perProc = 96
	for _, p := range []int{1, 2, 4} {
		n := perProc * p
		g := gen.WattsStrogatz(n, 32, 0.3, 1, gen.Config{})
		b.Run(fmt.Sprintf("p=%d/n=%d", p, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MinCut(g, core.Options{Processors: p, Seed: uint64(i + 1)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8IPM: instructions-per-miss of the minimum cut
// implementations (Figure 8a) and the CC implementations (Figure 8b).
func BenchmarkFig8IPM(b *testing.B) {
	gCut := gen.ErdosRenyiM(384, 384*16, 1, gen.Config{})
	gCC := gen.RMAT(14, (1<<14)*32, 1, gen.Config{})
	cases := map[string]func(c *cachesim.Cache){
		"8a-SW":     func(c *cachesim.Cache) { cachesim.StoerWagnerKernel(c, gCut) },
		"8a-KS":     func(c *cachesim.Cache) { cachesim.KargerSteinKernel(c, gCut, rng.New(1, 0, 0), 2) },
		"8a-MC":     func(c *cachesim.Cache) { cachesim.MCKernel(c, gCut, rng.New(1, 0, 0), 16) },
		"8b-BGL":    func(c *cachesim.Cache) { cachesim.BFSCC(c, gCC) },
		"8b-CC":     func(c *cachesim.Cache) { cachesim.SamplingCC(c, gCC, rng.New(1, 0, 0), 0.5) },
		"8b-Galois": func(c *cachesim.Cache) { cachesim.UnionFindCC(c, gCC) },
	}
	for _, name := range []string{"8a-SW", "8a-KS", "8a-MC", "8b-BGL", "8b-CC", "8b-Galois"} {
		b.Run(name, func(b *testing.B) {
			var ipm float64
			for i := 0; i < b.N; i++ {
				c := cachesim.New(1<<15, 8)
				cases[name](c)
				ipm = c.IPM()
			}
			b.ReportMetric(ipm, "ipm")
		})
	}
}

// BenchmarkFig9SeqCacheEfficiency: simulated LLC misses of the three
// sequential minimum cut implementations (Figure 9a).
func BenchmarkFig9SeqCacheEfficiency(b *testing.B) {
	g := gen.ErdosRenyiM(384, 384*16, 1, gen.Config{})
	ksTrials := min(mincut.KargerSteinTrials(g.N, 0.9), 2)
	mcTrials := min(mincut.Trials(g.N, g.M(), 0.9), 16)
	cases := map[string]func(c *cachesim.Cache){
		"SW": func(c *cachesim.Cache) { cachesim.StoerWagnerKernel(c, g) },
		"KS": func(c *cachesim.Cache) { cachesim.KargerSteinKernel(c, g, rng.New(1, 0, 0), ksTrials) },
		"MC": func(c *cachesim.Cache) { cachesim.MCKernel(c, g, rng.New(1, 0, 0), mcTrials) },
	}
	for _, name := range []string{"SW", "KS", "MC"} {
		b.Run(name, func(b *testing.B) {
			var misses float64
			for i := 0; i < b.N; i++ {
				c := cachesim.New(1<<12, 8)
				cases[name](c)
				misses = float64(c.Misses())
			}
			b.ReportMetric(misses, "sim_misses")
		})
	}
}
